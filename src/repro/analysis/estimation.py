"""Estimating the model's parameters from observed traffic.

The paper's conclusion flags "developing more accurate methods for
estimating these parameters" (the total transaction rate N, per-user rates
N_u, and the transaction distribution) as future work; its model assumes
a joining user "knows the distribution of transactions in the network".
This module closes that loop: given an observed transaction trace (e.g.
produced by the simulator, or by a node watching its own forwards), it
recovers:

* per-sender Poisson rates with exact chi-square confidence intervals;
* the Zipf scale parameter ``s`` by maximum likelihood under the
  modified-Zipf receiver model (grid + golden-section refinement);
* the average fee ``f_avg`` from observed (amount, fee) samples.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Hashable, Iterable, Sequence, Tuple

import numpy as np
from scipy import stats

from ..errors import InvalidParameter
from ..network.graph import ChannelGraph
from ..transactions.workload import Transaction
from ..transactions.zipf import ModifiedZipf

__all__ = [
    "RateEstimate",
    "estimate_sender_rates",
    "estimate_total_rate",
    "ZipfEstimate",
    "estimate_zipf_s",
    "estimate_average_fee",
]


@dataclass(frozen=True)
class RateEstimate:
    """A Poisson rate with an exact confidence interval."""

    rate: float
    count: int
    horizon: float
    ci_low: float
    ci_high: float

    def contains(self, true_rate: float) -> bool:
        return self.ci_low <= true_rate <= self.ci_high


def _poisson_rate_ci(
    count: int, horizon: float, confidence: float
) -> Tuple[float, float]:
    """Exact (Garwood) chi-square CI for a Poisson rate."""
    alpha = 1.0 - confidence
    low = (
        stats.chi2.ppf(alpha / 2.0, 2 * count) / (2.0 * horizon)
        if count > 0
        else 0.0
    )
    high = stats.chi2.ppf(1.0 - alpha / 2.0, 2 * count + 2) / (2.0 * horizon)
    return float(low), float(high)


def estimate_sender_rates(
    transactions: Iterable[Transaction],
    horizon: float,
    confidence: float = 0.95,
) -> Dict[Hashable, RateEstimate]:
    """Per-sender Poisson rate estimates from a trace over ``horizon``."""
    if horizon <= 0:
        raise InvalidParameter("horizon must be > 0")
    if not 0 < confidence < 1:
        raise InvalidParameter("confidence must be in (0, 1)")
    counts: Dict[Hashable, int] = {}
    for tx in transactions:
        counts[tx.sender] = counts.get(tx.sender, 0) + 1
    out = {}
    for sender, count in counts.items():
        low, high = _poisson_rate_ci(count, horizon, confidence)
        out[sender] = RateEstimate(
            rate=count / horizon,
            count=count,
            horizon=horizon,
            ci_low=low,
            ci_high=high,
        )
    return out


def estimate_total_rate(
    transactions: Sequence[Transaction],
    horizon: float,
    confidence: float = 0.95,
) -> RateEstimate:
    """Network-wide arrival rate ``N`` with confidence interval."""
    if horizon <= 0:
        raise InvalidParameter("horizon must be > 0")
    count = len(transactions)
    low, high = _poisson_rate_ci(count, horizon, confidence)
    return RateEstimate(
        rate=count / horizon, count=count, horizon=horizon,
        ci_low=low, ci_high=high,
    )


@dataclass(frozen=True)
class ZipfEstimate:
    """MLE of the Zipf scale parameter."""

    s: float
    log_likelihood: float
    samples: int


def _trace_log_likelihood(
    graph: ChannelGraph,
    pairs: Sequence[Tuple[Hashable, Hashable]],
    s: float,
) -> float:
    zipf = ModifiedZipf(graph, s=s, cache=True)
    rows: Dict[Hashable, Dict[Hashable, float]] = {}
    total = 0.0
    for sender, receiver in pairs:
        if sender not in rows:
            rows[sender] = zipf.receivers(sender)
        p = rows[sender].get(receiver, 0.0)
        if p <= 0:
            return -math.inf
        total += math.log(p)
    return total


def estimate_zipf_s(
    graph: ChannelGraph,
    transactions: Iterable[Transaction],
    s_max: float = 6.0,
    coarse_points: int = 25,
    refine_iterations: int = 40,
) -> ZipfEstimate:
    """Maximum-likelihood ``s`` under the modified-Zipf receiver model.

    Coarse grid over ``[0, s_max]`` followed by golden-section refinement
    around the best grid point (the log-likelihood is smooth and, in
    practice, unimodal in ``s``).
    """
    pairs = [(tx.sender, tx.receiver) for tx in transactions]
    if not pairs:
        raise InvalidParameter("need at least one transaction")
    grid = np.linspace(0.0, s_max, coarse_points)
    values = [_trace_log_likelihood(graph, pairs, float(s)) for s in grid]
    best = int(np.argmax(values))
    lo = grid[max(best - 1, 0)]
    hi = grid[min(best + 1, len(grid) - 1)]

    # golden-section search on [lo, hi]
    inv_phi = (math.sqrt(5.0) - 1.0) / 2.0
    a, b = float(lo), float(hi)
    c = b - inv_phi * (b - a)
    d = a + inv_phi * (b - a)
    fc = _trace_log_likelihood(graph, pairs, c)
    fd = _trace_log_likelihood(graph, pairs, d)
    for _ in range(refine_iterations):
        if fc >= fd:
            b, d, fd = d, c, fc
            c = b - inv_phi * (b - a)
            fc = _trace_log_likelihood(graph, pairs, c)
        else:
            a, c, fc = c, d, fd
            d = a + inv_phi * (b - a)
            fd = _trace_log_likelihood(graph, pairs, d)
    s_hat = (a + b) / 2.0
    return ZipfEstimate(
        s=s_hat,
        log_likelihood=_trace_log_likelihood(graph, pairs, s_hat),
        samples=len(pairs),
    )


def estimate_average_fee(
    fee_samples: Sequence[float], confidence: float = 0.95
) -> Tuple[float, float, float]:
    """``f_avg`` from observed per-hop fees: mean and normal-theory CI."""
    if not fee_samples:
        raise InvalidParameter("need at least one fee sample")
    samples = np.asarray(fee_samples, dtype=float)
    mean = float(samples.mean())
    if len(samples) == 1:
        return mean, mean, mean
    sem = float(samples.std(ddof=1)) / math.sqrt(len(samples))
    z = stats.norm.ppf(0.5 + confidence / 2.0)
    return mean, mean - z * sem, mean + z * sem
