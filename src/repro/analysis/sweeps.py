"""Parameter-sweep driver used by the benchmarks and examples.

Turns a grid specification (dict of parameter name -> list of values) into
the cartesian product, evaluates a function on every point, and collects
rows of results — the machinery behind the parameter-space maps of
bench E8 (star NE region) and friends.

The grid expansion and executor plumbing live in
:mod:`repro.scenarios.grid` (shared with the scenario runner's
``run_sweep``); this module keeps the historical callable-per-point API and
adds opt-in process parallelism via ``executor="process"``.
"""

from __future__ import annotations

from functools import partial
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence

from ..scenarios.grid import evaluate_grid, grid_points

__all__ = ["grid_points", "run_sweep"]


def _apply_point(
    evaluate: Callable[..., Mapping[str, Any]],
    index: int,
    point: Dict[str, Any],
) -> Mapping[str, Any]:
    """Top-level (hence picklable) adapter from (index, point) to kwargs."""
    return evaluate(**point)


def run_sweep(
    grid: Mapping[str, Sequence[Any]],
    evaluate: Callable[..., Mapping[str, Any]],
    progress: Optional[Callable[[int, Dict[str, Any]], None]] = None,
    executor: str = "serial",
    max_workers: Optional[int] = None,
) -> List[Dict[str, Any]]:
    """Evaluate ``evaluate(**point)`` on every grid point.

    ``evaluate`` must return a mapping of result columns; the returned rows
    merge the point's parameters with its results (results win on name
    clashes).

    Args:
        grid: parameter name -> values.
        evaluate: called with the point as keyword arguments. With
            ``executor="process"`` it must be picklable (a top-level
            function, not a lambda or closure).
        progress: optional callback ``(index, point)`` before each point.
        executor: ``"serial"`` (default, historical behaviour) or
            ``"process"`` to spread points over a ``ProcessPoolExecutor``;
            row order is identical either way.
        max_workers: process-pool size (``"process"`` only).
    """
    return evaluate_grid(
        grid,
        partial(_apply_point, evaluate),
        executor=executor,
        max_workers=max_workers,
        progress=progress,
    )
