"""Parameter-sweep driver used by the benchmarks and examples.

Turns a grid specification (dict of parameter name -> list of values) into
the cartesian product, evaluates a function on every point, and collects
rows of results — the machinery behind the parameter-space maps of
bench E8 (star NE region) and friends.
"""

from __future__ import annotations

from itertools import product
from typing import Any, Callable, Dict, Iterator, List, Mapping, Sequence

__all__ = ["grid_points", "run_sweep"]


def grid_points(grid: Mapping[str, Sequence[Any]]) -> Iterator[Dict[str, Any]]:
    """Yield every combination of the grid as a dict.

    Iteration order is deterministic: keys in insertion order, values in
    the order given.
    """
    keys = list(grid)
    for values in product(*(grid[k] for k in keys)):
        yield dict(zip(keys, values))

def run_sweep(
    grid: Mapping[str, Sequence[Any]],
    evaluate: Callable[..., Mapping[str, Any]],
    progress: Callable[[int, Dict[str, Any]], None] = None,
) -> List[Dict[str, Any]]:
    """Evaluate ``evaluate(**point)`` on every grid point.

    ``evaluate`` must return a mapping of result columns; the returned rows
    merge the point's parameters with its results (results win on name
    clashes).

    Args:
        grid: parameter name -> values.
        evaluate: called with the point as keyword arguments.
        progress: optional callback ``(index, point)`` before each point.
    """
    rows: List[Dict[str, Any]] = []
    for index, point in enumerate(grid_points(grid)):
        if progress is not None:
            progress(index, point)
        result = evaluate(**point)
        row = dict(point)
        row.update(result)
        rows.append(row)
    return rows
