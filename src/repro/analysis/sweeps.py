"""Parameter-sweep driver used by the benchmarks and examples.

Turns a grid specification (dict of parameter name -> list of values) into
the cartesian product, evaluates a function on every point, and collects
rows of results — the machinery behind the parameter-space maps of
bench E8 (star NE region) and friends.

The grid expansion and executor plumbing live in
:mod:`repro.scenarios.grid` (shared with the scenario runner's
``run_sweep``); this module keeps the historical callable-per-point API and
adds opt-in process parallelism via ``executor="process"``.
"""

from __future__ import annotations

from functools import partial
from pathlib import Path
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Union,
)

from ..scenarios.grid import evaluate_grid, grid_points

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..service.store import ResultStore

__all__ = ["grid_points", "run_sweep"]


def _apply_point(
    evaluate: Callable[..., Mapping[str, Any]],
    index: int,
    point: Dict[str, Any],
) -> Mapping[str, Any]:
    """Top-level (hence picklable) adapter from (index, point) to kwargs."""
    return evaluate(**point)


def _apply_point_cached(
    evaluate: Callable[..., Mapping[str, Any]],
    store_root: str,
    namespace: str,
    index: int,
    point: Dict[str, Any],
) -> Mapping[str, Any]:
    """Cache-aware per-point adapter (top-level, picklable).

    The key hashes ``(namespace, point)`` — the evaluator itself cannot
    be hashed, so callers that change evaluator behaviour must change
    ``cache_key`` (or the store path) to invalidate.
    """
    from ..service.hashing import point_hash
    from ..service.store import ResultStore

    store = ResultStore(store_root)
    key = point_hash(namespace, point)
    cached = store.get(key)
    if cached is not None:
        return dict(cached["row"])
    row = dict(evaluate(**point))
    # Return the normalised row put() hands back, so cache misses and
    # later hits serve byte-identical responses.
    stored = store.put(key, {"row": row}, kind="sweep-row")
    return dict(stored["row"])


def run_sweep(
    grid: Mapping[str, Sequence[Any]],
    evaluate: Callable[..., Mapping[str, Any]],
    progress: Optional[Callable[[int, Dict[str, Any]], None]] = None,
    executor: str = "serial",
    max_workers: Optional[int] = None,
    cache: Optional[Union["ResultStore", str, Path]] = None,
    cache_key: Optional[str] = None,
) -> List[Dict[str, Any]]:
    """Evaluate ``evaluate(**point)`` on every grid point.

    ``evaluate`` must return a mapping of result columns; the returned rows
    merge the point's parameters with its results (results win on name
    clashes).

    Args:
        grid: parameter name -> values.
        evaluate: called with the point as keyword arguments. With
            ``executor="process"`` it must be picklable (a top-level
            function, not a lambda or closure).
        progress: optional callback ``(index, point)`` before each point.
        executor: ``"serial"`` (default, historical behaviour) or
            ``"process"`` to spread points over a ``ProcessPoolExecutor``;
            row order is identical either way.
        max_workers: process-pool size (``"process"`` only).
        cache: a :class:`~repro.service.store.ResultStore` (or store
            path) memoising rows by content address of
            ``(cache_key, point)``; cached points are not re-evaluated.
        cache_key: namespace distinguishing different evaluators sharing
            one store; defaults to the evaluator's qualified name. Change
            it whenever the evaluator's behaviour changes — the function
            itself is not part of the hash.
    """
    if cache is None:
        apply = partial(_apply_point, evaluate)
    else:
        from ..service.store import ResultStore

        store = ResultStore.open(cache)
        namespace = cache_key or (
            f"{getattr(evaluate, '__module__', '?')}."
            f"{getattr(evaluate, '__qualname__', repr(evaluate))}"
        )
        apply = partial(
            _apply_point_cached, evaluate, str(store.root), namespace
        )
    return evaluate_grid(
        grid,
        apply,
        executor=executor,
        max_workers=max_workers,
        progress=progress,
    )
