"""Fixed-width table rendering for benchmark output.

The benches print the same rows/series the paper's claims imply; this
module renders them readably in plain terminals (no external deps).
"""

from __future__ import annotations

from typing import Any, List, Mapping, Optional, Sequence

__all__ = ["format_table", "format_value"]


def format_value(value: Any, precision: int = 4) -> str:
    """Human-friendly rendering of one cell."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if abs(value) == float("inf"):
            return "inf" if value > 0 else "-inf"
        return f"{value:.{precision}g}"
    return str(value)


def format_table(
    rows: Sequence[Mapping[str, Any]],
    columns: Optional[Sequence[str]] = None,
    precision: int = 4,
    title: Optional[str] = None,
) -> str:
    """Render rows of dicts as a fixed-width text table.

    Args:
        rows: the data; all rows should share keys.
        columns: column order (defaults to the first row's keys).
        precision: significant digits for floats.
        title: optional heading line.
    """
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    rendered: List[List[str]] = [
        [format_value(row.get(col, ""), precision) for col in columns]
        for row in rows
    ]
    widths = [
        max(len(str(col)), max(len(r[i]) for r in rendered))
        for i, col in enumerate(columns)
    ]
    header = "  ".join(str(col).ljust(w) for col, w in zip(columns, widths))
    divider = "  ".join("-" * w for w in widths)
    body = [
        "  ".join(cell.ljust(w) for cell, w in zip(row, widths))
        for row in rendered
    ]
    lines = []
    if title:
        lines.append(title)
    lines.extend([header, divider])
    lines.extend(body)
    return "\n".join(lines)
