"""Command-line interface: run the paper's analyses from the shell.

Subcommands:

* ``join`` — compute an optimal joining strategy on a snapshot (generated
  or loaded) with the algorithm of your choice;
* ``stability`` — check whether a simple topology is a Nash equilibrium
  for given (a, b, l, s) and compare with the closed-form conditions;
* ``simulate`` — run the discrete-event simulator on a snapshot and
  report success rates and top earners;
* ``generate`` — write a synthetic snapshot to a JSON file.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from . import __version__
from .analysis import format_table
from .core import (
    JoiningUserModel,
    brute_force,
    continuous_local_search,
    exhaustive_discrete,
    greedy_fixed_funds,
)
from .equilibrium import (
    NetworkGameModel,
    check_nash,
    circle,
    path,
    star,
    star_ne_closed_form,
)
from .network.fees import LinearFee
from .params import ModelParameters
from .simulation import SimulationEngine
from .snapshots import (
    barabasi_albert_snapshot,
    core_periphery_snapshot,
    load_snapshot,
    save_snapshot,
)
from .transactions import ModifiedZipf, PoissonWorkload, TruncatedExponentialSizes

__all__ = ["main", "build_parser"]


def _load_or_generate(args: argparse.Namespace):
    if args.snapshot:
        return load_snapshot(args.snapshot)
    if args.topology == "ba":
        return barabasi_albert_snapshot(args.nodes, seed=args.seed)
    return core_periphery_snapshot(
        core_size=max(args.nodes // 10, 3),
        periphery_size=args.nodes - max(args.nodes // 10, 3),
        seed=args.seed,
    )


def _cmd_generate(args: argparse.Namespace) -> int:
    graph = _load_or_generate(args)
    save_snapshot(graph, args.output)
    print(
        f"wrote snapshot: {len(graph)} nodes, {graph.num_channels()} channels "
        f"-> {args.output}"
    )
    return 0


def _cmd_join(args: argparse.Namespace) -> int:
    graph = _load_or_generate(args)
    params = ModelParameters(zipf_s=args.zipf_s)
    model = JoiningUserModel(graph, args.user, params)
    if args.algorithm == "greedy":
        result = greedy_fixed_funds(model, budget=args.budget, lock=args.lock)
    elif args.algorithm == "exhaustive":
        result = exhaustive_discrete(
            model, budget=args.budget, granularity=args.granularity,
            max_divisions=args.max_divisions,
        )
    elif args.algorithm == "continuous":
        result = continuous_local_search(model, budget=args.budget)
    else:
        result = brute_force(model, budget=args.budget, lock=args.lock)
    print(result.summary())
    rows = [
        {"peer": str(a.peer), "locked": a.locked} for a in result.strategy
    ]
    if rows:
        print(format_table(rows, title="chosen channels"))
    return 0


def _cmd_stability(args: argparse.Namespace) -> int:
    builders = {"star": star, "path": path, "circle": circle}
    graph = builders[args.topology_name](args.size)
    model = NetworkGameModel(
        a=args.a, b=args.b, edge_cost=args.edge_cost, zipf_s=args.zipf_s
    )
    report = check_nash(graph, model, mode=args.mode, seed=0)
    print(f"{args.topology_name}({args.size}): NE={report.is_nash}")
    if not report.is_nash:
        for node in report.deviating_nodes:
            response = report.responses[node]
            print(
                f"  {node}: gain={response.gain:.6g} via {response.best_deviation}"
            )
    if args.topology_name == "star":
        closed = star_ne_closed_form(
            args.size, args.zipf_s, args.a, args.b, args.edge_cost
        )
        print(f"Thm 8 closed form says NE={closed}")
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    graph = _load_or_generate(args)
    distribution = ModifiedZipf(graph, s=args.zipf_s)
    rates = {node: 1.0 for node in graph.nodes}
    workload = PoissonWorkload(
        distribution,
        rates,
        sizes=TruncatedExponentialSizes(scale=args.tx_scale, high=args.tx_max),
        seed=args.seed,
    )
    engine = SimulationEngine(graph, fee=LinearFee(base=0.01, rate=0.001))
    engine.schedule_workload(workload, horizon=args.horizon)
    metrics = engine.run()
    print(metrics.summary())
    earners = sorted(
        metrics.revenue.items(), key=lambda kv: kv[1], reverse=True
    )[:10]
    rows = [
        {"node": str(node), "revenue": rev, "rate": metrics.revenue_rate(node)}
        for node, rev in earners
    ]
    if rows:
        print(format_table(rows, title="top earners"))
    return 0


def _cmd_estimate(args: argparse.Namespace) -> int:
    """Simulate traffic with known parameters, then recover them."""
    from .analysis.estimation import estimate_sender_rates, estimate_zipf_s

    graph = _load_or_generate(args)
    workload = PoissonWorkload(
        ModifiedZipf(graph, s=args.zipf_s),
        {node: args.sender_rate for node in graph.nodes},
        seed=args.seed,
    )
    trace = workload.generate_count(args.samples)
    zipf = estimate_zipf_s(graph, trace)
    print(f"true s = {args.zipf_s:g}, estimated s = {zipf.s:.3f} "
          f"({zipf.samples} samples)")
    horizon = trace[-1].time
    rates = estimate_sender_rates(trace, horizon)
    covered = sum(e.contains(args.sender_rate) for e in rates.values())
    print(
        f"per-sender rate CIs covering the true rate {args.sender_rate:g}: "
        f"{covered}/{len(rates)}"
    )
    top = sorted(rates.items(), key=lambda kv: kv[1].rate, reverse=True)[:5]
    rows = [
        {
            "node": str(node),
            "rate": est.rate,
            "ci_low": est.ci_low,
            "ci_high": est.ci_high,
        }
        for node, est in top
    ]
    print(format_table(rows, title="busiest senders"))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="lightning-creation-games",
        description="Lightning Creation Games (ICDCS 2023) reproduction CLI",
    )
    parser.add_argument("--version", action="version", version=__version__)
    sub = parser.add_subparsers(dest="command", required=True)

    def add_snapshot_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("--snapshot", help="describegraph JSON to load")
        p.add_argument("--topology", choices=["ba", "core-periphery"], default="ba")
        p.add_argument("--nodes", type=int, default=50)
        p.add_argument("--seed", type=int, default=7)
        p.add_argument("--zipf-s", dest="zipf_s", type=float, default=1.0)

    p_gen = sub.add_parser("generate", help="write a synthetic snapshot")
    add_snapshot_args(p_gen)
    p_gen.add_argument("output", help="output JSON path")
    p_gen.set_defaults(func=_cmd_generate)

    p_join = sub.add_parser("join", help="optimal joining strategy")
    add_snapshot_args(p_join)
    p_join.add_argument("--user", default="new-user")
    p_join.add_argument("--budget", type=float, default=10.0)
    p_join.add_argument("--lock", type=float, default=1.0)
    p_join.add_argument("--granularity", type=float, default=1.0)
    p_join.add_argument("--max-divisions", type=int, default=200)
    p_join.add_argument(
        "--algorithm",
        choices=["greedy", "exhaustive", "continuous", "bruteforce"],
        default="greedy",
    )
    p_join.set_defaults(func=_cmd_join)

    p_stab = sub.add_parser("stability", help="Nash-equilibrium check")
    p_stab.add_argument(
        "topology_name", choices=["star", "path", "circle"]
    )
    p_stab.add_argument("--size", type=int, default=6)
    p_stab.add_argument("-a", type=float, default=0.1)
    p_stab.add_argument("-b", type=float, default=0.1)
    p_stab.add_argument("--edge-cost", type=float, default=1.0)
    p_stab.add_argument("--zipf-s", dest="zipf_s", type=float, default=2.0)
    p_stab.add_argument(
        "--mode", choices=["structured", "exhaustive"], default="structured"
    )
    p_stab.set_defaults(func=_cmd_stability)

    p_sim = sub.add_parser("simulate", help="run the payment simulator")
    add_snapshot_args(p_sim)
    p_sim.add_argument("--horizon", type=float, default=100.0)
    p_sim.add_argument("--tx-scale", type=float, default=0.5)
    p_sim.add_argument("--tx-max", type=float, default=5.0)
    p_sim.set_defaults(func=_cmd_simulate)

    p_est = sub.add_parser(
        "estimate", help="round-trip parameter estimation on simulated traffic"
    )
    add_snapshot_args(p_est)
    p_est.add_argument("--samples", type=int, default=1000)
    p_est.add_argument("--sender-rate", type=float, default=1.0)
    p_est.set_defaults(func=_cmd_estimate)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
