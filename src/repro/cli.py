"""Command-line interface: run the paper's analyses from the shell.

Every subcommand is a thin adapter over the declarative scenario API
(:mod:`repro.scenarios`): it assembles a :class:`Scenario` from its flags
and hands it to :class:`ScenarioRunner`, so the CLI, the examples, and the
sweep machinery all execute experiments through the same code path.

Subcommands:

* ``join`` — compute an optimal joining strategy on a snapshot (generated
  or loaded) with the algorithm of your choice;
* ``stability`` — check whether a simple topology is a Nash equilibrium
  for given (a, b, l, s) and compare with the closed-form conditions;
* ``simulate`` — run the discrete-event simulator on a snapshot and
  report success rates and top earners (``--trace-out`` streams the
  instrumentation trace to a JSONL file);
* ``generate`` — write a synthetic snapshot to a JSON file;
* ``estimate`` — simulate traffic with known parameters (Zipf ``s``,
  per-sender rates), then recover them and report the round-trip error;
* ``run-scenario`` — execute a scenario described as a JSON file
  (topology + workload + fee + algorithm + simulation) end to end
  (``--profile`` additionally prints the hot-spot report);
* ``profile`` — run a scenario fully instrumented (:mod:`repro.obs`)
  and print the hot-spot report: top conflicting edges, per-phase wall
  time, cache hit rates; ``--output`` writes the schema-versioned
  ``RunTelemetry`` JSON, ``--trace-out`` the span/event JSONL trace;
* ``sweep`` — evaluate a scenario JSON over a grid of dotted-path
  overrides (``--set topology.params.n=10,20,50``), serially or across
  worker processes (``--executor process``);
* ``attack`` — run the adversarial traffic engine against a topology
  (jamming / depletion / griefing) and report the damage vs. an honest
  baseline; ``--compare`` sweeps the budget over the star / path / circle
  equilibria and prints the resilience table;
* ``evolve`` — run the epoch-based network evolution engine (arrivals,
  churn, traffic epochs, best-response dynamics) on a topology and emit
  the JSON trajectory; ``--emergence`` sweeps the Section IV topologies
  and prints the emergence table instead;
* ``serve`` — run the long-lived scenario service daemon
  (:mod:`repro.service`): JSON-lines over localhost TCP, content-
  addressed result store, async job queue with in-flight dedupe;
* ``submit`` — send a scenario JSON to a running daemon (``--wait``
  blocks for the result document);
* ``status`` — query a running daemon for job states;
* ``store`` — inspect (``stats``) or evict from (``gc``) a result store
  without a daemon;
* ``lint`` — run reprolint, the AST-based invariant linter
  (:mod:`repro.devtools`), over the tree: determinism, GraphView
  immutability, frozen artifacts, registry discipline, store/artifact
  serialisation hygiene (RPR001–RPR008).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict, List, Optional

from . import __version__
from .analysis import format_table
from .devtools.cli import add_lint_arguments, run_lint
from .errors import ReproError, ScenarioError
from .equilibrium import (
    NetworkGameModel,
    check_nash,
    star_ne_closed_form,
)
from .scenarios import (
    AlgorithmSpec,
    ChurnSpec,
    EvolutionSpec,
    FeeSpec,
    GrowthSpec,
    Scenario,
    ScenarioRunner,
    SimulationSpec,
    TopologySpec,
    WorkloadSpec,
    build_topology,
)
from .snapshots import save_snapshot
from .transactions import ModifiedZipf, PoissonWorkload

__all__ = ["main", "build_parser"]


def _topology_spec(args: argparse.Namespace) -> TopologySpec:
    """The snapshot-flags -> TopologySpec adapter shared by subcommands."""
    if args.snapshot:
        return TopologySpec("file", {"path": args.snapshot})
    if args.topology == "ba":
        return TopologySpec("ba", {"n": args.nodes})
    core_size = max(args.nodes // 10, 3)
    return TopologySpec(
        "core-periphery",
        {"core_size": core_size, "periphery_size": args.nodes - core_size},
    )


def _cmd_generate(args: argparse.Namespace) -> int:
    scenario = Scenario(
        topology=_topology_spec(args), name="generate", seed=args.seed
    )
    graph = ScenarioRunner().run(scenario).graph
    save_snapshot(graph, args.output)
    print(
        f"wrote snapshot: {len(graph)} nodes, {graph.num_channels()} channels "
        f"-> {args.output}"
    )
    return 0


def _cmd_join(args: argparse.Namespace) -> int:
    params: Dict[str, Any] = {"budget": args.budget}
    if args.algorithm in ("greedy", "bruteforce"):
        params["lock"] = args.lock
    elif args.algorithm == "exhaustive":
        params["granularity"] = args.granularity
        params["max_divisions"] = args.max_divisions
    scenario = Scenario(
        topology=_topology_spec(args),
        algorithm=AlgorithmSpec(
            args.algorithm,
            params,
            user=args.user,
            model={"zipf_s": args.zipf_s},
        ),
        name="join",
        seed=args.seed,
    )
    result = ScenarioRunner().run(scenario).optimisation
    print(result.summary())
    rows = [
        {"peer": str(a.peer), "locked": a.locked} for a in result.strategy
    ]
    if rows:
        print(format_table(rows, title="chosen channels"))
    return 0


def _cmd_stability(args: argparse.Namespace) -> int:
    size_param = "leaves" if args.topology_name == "star" else "n"
    graph = build_topology(
        TopologySpec(args.topology_name, {size_param: args.size})
    )
    model = NetworkGameModel(
        a=args.a, b=args.b, edge_cost=args.edge_cost, zipf_s=args.zipf_s
    )
    report = check_nash(graph, model, mode=args.mode, seed=0)
    print(f"{args.topology_name}({args.size}): NE={report.is_nash}")
    if not report.is_nash:
        for node in report.deviating_nodes:
            response = report.responses[node]
            print(
                f"  {node}: gain={response.gain:.6g} via {response.best_deviation}"
            )
    if args.topology_name == "star":
        closed = star_ne_closed_form(
            args.size, args.zipf_s, args.a, args.b, args.edge_cost
        )
        print(f"Thm 8 closed form says NE={closed}")
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    scenario = Scenario(
        topology=_topology_spec(args),
        workload=WorkloadSpec(
            "poisson",
            {
                "zipf_s": args.zipf_s,
                "sizes": {
                    "kind": "truncated-exponential",
                    "scale": args.tx_scale,
                    "high": args.tx_max,
                },
            },
        ),
        fee=FeeSpec("linear", {"base": 0.01, "rate": 0.001}),
        simulation=SimulationSpec(horizon=args.horizon, backend=args.backend),
        name="simulate",
        seed=args.seed,
    )
    obs = None
    if args.trace_out:
        from .obs import ObsSession, TraceWriter

        obs = ObsSession(tracer=TraceWriter(args.trace_out))
    try:
        metrics = ScenarioRunner(obs=obs).run(scenario).metrics
    finally:
        if obs is not None and obs.tracer is not None:
            records = obs.tracer.records_written
            obs.tracer.close()
            print(f"wrote {records} trace records -> {args.trace_out}",
                  file=sys.stderr)
    print(metrics.summary())
    earners = sorted(
        metrics.revenue.items(), key=lambda kv: kv[1], reverse=True
    )[:10]
    rows = [
        {"node": str(node), "revenue": rev, "rate": metrics.revenue_rate(node)}
        for node, rev in earners
    ]
    if rows:
        print(format_table(rows, title="top earners"))
    return 0


def _cmd_estimate(args: argparse.Namespace) -> int:
    """Simulate traffic with known parameters, then recover them."""
    from .analysis.estimation import estimate_sender_rates, estimate_zipf_s

    graph = build_topology(_topology_spec(args), seed=args.seed)
    workload = PoissonWorkload(
        ModifiedZipf(graph, s=args.zipf_s),
        {node: args.sender_rate for node in graph.nodes},
        seed=args.seed,
    )
    trace = workload.generate_count(args.samples)
    zipf = estimate_zipf_s(graph, trace)
    print(f"true s = {args.zipf_s:g}, estimated s = {zipf.s:.3f} "
          f"({zipf.samples} samples)")
    horizon = trace[-1].time
    rates = estimate_sender_rates(trace, horizon)
    covered = sum(e.contains(args.sender_rate) for e in rates.values())
    print(
        f"per-sender rate CIs covering the true rate {args.sender_rate:g}: "
        f"{covered}/{len(rates)}"
    )
    top = sorted(rates.items(), key=lambda kv: kv[1].rate, reverse=True)[:5]
    rows = [
        {
            "node": str(node),
            "rate": est.rate,
            "ci_low": est.ci_low,
            "ci_high": est.ci_high,
        }
        for node, est in top
    ]
    print(format_table(rows, title="busiest senders"))
    return 0


def _load_scenario(path: str) -> Scenario:
    try:
        with open(path) as handle:
            return Scenario.from_json(handle.read())
    except OSError as exc:
        raise ScenarioError(f"cannot read scenario file {path}: {exc}") from exc


def _apply_scenario_overrides(
    scenario: Scenario, args: argparse.Namespace
) -> Scenario:
    """Apply the shared ``--seed`` / ``--backend`` override flags."""
    if args.seed is not None:
        scenario = scenario.with_overrides({"seed": args.seed})
    if args.backend is not None:
        if scenario.simulation is None:
            raise ScenarioError(
                "--backend needs a scenario with a simulation section"
            )
        scenario = scenario.with_overrides({"simulation.backend": args.backend})
    return scenario


def _cmd_run_scenario(args: argparse.Namespace) -> int:
    scenario = _apply_scenario_overrides(_load_scenario(args.scenario), args)
    obs = None
    if args.profile:
        from .obs import ObsSession

        obs = ObsSession(profile=True)
    result = ScenarioRunner(obs=obs).run(scenario)
    print(result.summary())
    print(format_table([result.row], title=scenario.name))
    if obs is not None:
        from .obs import hotspot_table, telemetry_of

        telemetry = telemetry_of(result)
        if telemetry is not None:
            print()
            print(hotspot_table(telemetry))
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    """Run a scenario fully instrumented and print the hot-spot report."""
    from .obs import ObsSession, TraceWriter, hotspot_table, telemetry_of

    scenario = _apply_scenario_overrides(_load_scenario(args.scenario), args)
    tracer = TraceWriter(args.trace_out) if args.trace_out else None
    obs = ObsSession(profile=True, tracer=tracer)
    try:
        result = ScenarioRunner(obs=obs).run(scenario)
    finally:
        if tracer is not None:
            records = tracer.records_written
            tracer.close()
            print(f"wrote {records} trace records -> {args.trace_out}",
                  file=sys.stderr)
    telemetry = telemetry_of(result)
    assert telemetry is not None  # profile=True forces an enabled session
    print(result.summary())
    print()
    print(hotspot_table(telemetry, top=args.top))
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(telemetry.to_json())
            handle.write("\n")
        print(f"wrote telemetry -> {args.output}")
    return 0


def _parse_grid_setting(setting: str) -> Dict[str, List[Any]]:
    """``"topology.params.n=10,20"`` -> ``{"topology.params.n": [10, 20]}``.

    The value part is parsed as one JSON document first: a JSON array is
    the explicit list of grid values (the only way to sweep list- or
    object-valued parameters, e.g.
    ``fee.params.knots=[[[0,0.1],[5,0.5]]]`` — one value that is itself a
    list of knots). Otherwise the value splits on commas, each token
    parsing as JSON when possible and falling back to a bare string (so
    ``fee.kind=linear`` works unquoted).
    """
    path, _, values = setting.partition("=")
    if not path or not values:
        raise ScenarioError(
            f"--set expects PATH=V1[,V2,...], got {setting!r}"
        )
    try:
        document = json.loads(values)
    except json.JSONDecodeError:
        pass
    else:
        return {path: document if isinstance(document, list) else [document]}

    def parse(token: str) -> Any:
        try:
            return json.loads(token)
        except json.JSONDecodeError:
            return token

    return {path: [parse(token) for token in values.split(",")]}


def _cmd_sweep(args: argparse.Namespace) -> int:
    scenario = _load_scenario(args.scenario)
    grid: Dict[str, List[Any]] = {}
    for setting in args.set or []:
        grid.update(_parse_grid_setting(setting))
    progress = None
    if args.verbose:
        progress = lambda index, point: print(f"[{index}] {point}", file=sys.stderr)
    rows = ScenarioRunner().run_sweep(
        scenario,
        grid,
        executor=args.executor,
        max_workers=args.workers,
        progress=progress,
        cache=args.cache,
    )
    if args.output:
        with open(args.output, "w") as handle:
            json.dump(rows, handle, indent=2)
        print(f"wrote {len(rows)} rows -> {args.output}")
    else:
        print(format_table(rows, title=f"sweep of {scenario.name}"))
    return 0


_ATTACK_TOPOLOGY_SIZE_PARAM = {
    "star": "leaves", "path": "n", "circle": "n", "complete": "n", "ba": "n",
}


def _cmd_attack(args: argparse.Namespace) -> int:
    from .analysis.resilience import (
        TABLE_COLUMNS,
        default_attack_scenario,
        resilience_table,
    )

    attack_params: Dict[str, Any] = {"budget": args.budget}
    if args.victim is not None:
        attack_params["victim"] = args.victim
    if args.slot_cap is not None:
        attack_params["slot_cap"] = args.slot_cap
    if args.amount is not None:
        attack_params["amount"] = args.amount
    if args.hold_time is not None:
        attack_params["hold_time"] = args.hold_time

    if args.countermeasures:
        from .analysis.countermeasures import (
            TABLE_COLUMNS as COUNTERMEASURE_COLUMNS,
            countermeasure_table,
        )

        rows = countermeasure_table(
            args.upfront_rates,
            budget=args.budget,
            strategy=args.strategy,
            size=args.size,
            balance=args.balance,
            horizon=args.horizon,
            seed=args.seed,
            zipf_s=args.zipf_s,
            upfront_base=args.upfront_base,
            backend=args.backend,
            attack_params={
                k: v for k, v in attack_params.items() if k != "budget"
            },
            executor=args.executor,
            max_workers=args.workers,
            cache=args.cache,
        )
        print(format_table(
            rows,
            columns=list(COUNTERMEASURE_COLUMNS),
            title=f"jamming countermeasures vs {args.strategy}",
        ))
        return 0

    if args.compare:
        budgets = args.budgets if args.budgets else [args.budget]
        rows = resilience_table(
            budgets,
            strategy=args.strategy,
            size=args.size,
            balance=args.balance,
            horizon=args.horizon,
            seed=args.seed,
            zipf_s=args.zipf_s,
            attack_params={
                k: v for k, v in attack_params.items() if k != "budget"
            },
            executor=args.executor,
            max_workers=args.workers,
        )
        print(format_table(
            rows,
            columns=list(TABLE_COLUMNS),
            title=f"NE resilience under {args.strategy}",
        ))
        return 0

    size_param = _ATTACK_TOPOLOGY_SIZE_PARAM[args.topology]
    size = args.size - 1 if args.topology == "star" else args.size
    scenario = default_attack_scenario(
        TopologySpec(
            args.topology, {size_param: size, "balance": args.balance}
            if args.topology != "ba" else {"n": args.size},
        ),
        args.strategy,
        attack_params,
        horizon=args.horizon,
        seed=args.seed,
        zipf_s=args.zipf_s,
    )
    scenario = scenario.with_overrides(
        {"simulation.backend": args.backend}
    )
    if args.fee_policy == "upfront":
        scenario = scenario.with_overrides({
            "fee.upfront_base": args.upfront_base,
            "fee.upfront_rate": args.upfront_rates[0],
        })
    result = ScenarioRunner().run(scenario)
    report = result.attack
    print(report.summary())
    print(format_table([report.to_row()], title="attack report"))
    return 0


def _cmd_evolve(args: argparse.Namespace) -> int:
    from .analysis.emergence import EMERGENCE_COLUMNS, emergence_table

    if args.emergence:
        rows = emergence_table(
            epochs=args.epochs,
            size=args.size,
            balance=args.balance,
            seed=args.seed,
            arrival_rate=args.arrival_rate,
            churn_rate=args.churn_rate,
            utility=args.utility,
            traffic_horizon=args.horizon,
            a=args.a,
            b=args.b,
            edge_cost=args.edge_cost,
            zipf_s=args.zipf_s,
            sample=args.sample,
            mode=args.mode,
            executor=args.executor,
            max_workers=args.workers,
        )
        print(format_table(
            rows,
            columns=list(EMERGENCE_COLUMNS),
            title="topology emergence under evolution",
        ))
        return 0

    growth = None
    if args.arrival_rate > 0:
        growth = GrowthSpec("poisson", {
            "rate": args.arrival_rate,
            "algorithm": args.join_algorithm,
            "params": (
                {"budget": args.join_budget, "lock": 1.0}
                if args.join_algorithm == "greedy" else {}
            ),
        })
    churn = None
    if args.churn_rate > 0:
        churn = ChurnSpec("uniform", {"rate": args.churn_rate})
    size_param = _ATTACK_TOPOLOGY_SIZE_PARAM[args.topology]
    size = args.size - 1 if args.topology == "star" else args.size
    scenario = Scenario(
        topology=TopologySpec(
            args.topology,
            {size_param: size, "balance": args.balance}
            if args.topology != "ba" else {"n": args.size},
        ),
        workload=WorkloadSpec("poisson", {"zipf_s": args.zipf_s}),
        fee=FeeSpec("linear", {"base": 0.01, "rate": 0.001}),
        evolution=EvolutionSpec(
            epochs=args.epochs,
            growth=growth,
            churn=churn,
            utility=args.utility,
            traffic_horizon=args.horizon,
            sample=args.sample,
            mode=args.mode,
            # best-response channels match the topology's funding, so
            # empirical replays don't starve deviators of liquidity
            # (ba draws its own capacities; the spec default stands)
            balance=args.balance if args.topology != "ba" else 1.0,
            a=args.a,
            b=args.b,
            edge_cost=args.edge_cost,
            zipf_s=args.zipf_s,
        ),
        name="evolve",
        seed=args.seed,
    )
    trajectory = ScenarioRunner().run(scenario).evolution
    document = trajectory.to_json()
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(document + "\n")
        print(f"wrote trajectory ({trajectory.epochs_run} epochs) "
              f"-> {args.output}")
    else:
        print(document)
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from .service.daemon import run_server

    def announce(host: str, port: int) -> None:
        store = args.store or "default store"
        print(
            f"repro service listening on {host}:{port} "
            f"({args.workers} x {args.worker} workers, {store})",
            flush=True,
        )

    run_server(
        store=args.store,
        host=args.host,
        port=args.port,
        workers=args.workers,
        worker=args.worker,
        ready=announce,
    )
    return 0


def _cmd_submit(args: argparse.Namespace) -> int:
    from .service.daemon import ServiceClient

    scenario = _load_scenario(args.scenario)
    if args.seed is not None:
        scenario = scenario.with_overrides({"seed": args.seed})
    client = ServiceClient(host=args.host, port=args.port, timeout=args.timeout)
    response = client.submit(scenario.to_dict(), wait=args.wait)
    if args.wait:
        result = response["result"]
        print(f"{response['hash']}  state={response['state']}")
        print(format_table([result["row"]], title=scenario.name))
    else:
        print(f"{response['hash']}  state={response['state']}")
    return 0


def _cmd_status(args: argparse.Namespace) -> int:
    from .service.daemon import ServiceClient

    client = ServiceClient(host=args.host, port=args.port, timeout=args.timeout)
    if args.hash:
        job = client.status(args.hash)["job"]
        print(json.dumps(job, indent=2, sort_keys=True))
        return 0
    jobs = client.status()["jobs"]
    if not jobs:
        print("no jobs")
        return 0
    rows = [
        {
            "hash": job["spec_hash"][:12],
            "state": job["state"],
            "waiters": job["waiters"],
            "attempts": job["attempts"],
            "error": job["error"] or "",
        }
        for job in jobs
    ]
    print(format_table(rows, title="service jobs"))
    return 0


def _cmd_store(args: argparse.Namespace) -> int:
    from .service.store import ResultStore

    store = ResultStore.open(args.store)
    if args.store_command == "stats":
        print(json.dumps(store.stats().to_dict(), indent=2, sort_keys=True))
        return 0
    evicted = store.gc(max_entries=args.max_entries, max_bytes=args.max_bytes)
    stats = store.stats()
    print(
        f"evicted {len(evicted)} entries; {stats.entries} remain "
        f"({stats.total_bytes} bytes)"
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="lightning-creation-games",
        description="Lightning Creation Games (ICDCS 2023) reproduction CLI",
    )
    parser.add_argument("--version", action="version", version=__version__)
    sub = parser.add_subparsers(dest="command", required=True)

    def add_snapshot_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("--snapshot", help="describegraph JSON to load")
        p.add_argument("--topology", choices=["ba", "core-periphery"], default="ba")
        p.add_argument("--nodes", type=int, default=50)
        p.add_argument("--seed", type=int, default=7)
        p.add_argument("--zipf-s", dest="zipf_s", type=float, default=1.0)

    p_gen = sub.add_parser("generate", help="write a synthetic snapshot")
    add_snapshot_args(p_gen)
    p_gen.add_argument("output", help="output JSON path")
    p_gen.set_defaults(func=_cmd_generate)

    p_join = sub.add_parser("join", help="optimal joining strategy")
    add_snapshot_args(p_join)
    p_join.add_argument("--user", default="new-user")
    p_join.add_argument("--budget", type=float, default=10.0)
    p_join.add_argument("--lock", type=float, default=1.0)
    p_join.add_argument("--granularity", type=float, default=1.0)
    p_join.add_argument("--max-divisions", type=int, default=200)
    p_join.add_argument(
        "--algorithm",
        choices=["greedy", "exhaustive", "continuous", "bruteforce"],
        default="greedy",
    )
    p_join.set_defaults(func=_cmd_join)

    p_stab = sub.add_parser("stability", help="Nash-equilibrium check")
    p_stab.add_argument(
        "topology_name", choices=["star", "path", "circle"]
    )
    p_stab.add_argument("--size", type=int, default=6)
    p_stab.add_argument("-a", type=float, default=0.1)
    p_stab.add_argument("-b", type=float, default=0.1)
    p_stab.add_argument("--edge-cost", type=float, default=1.0)
    p_stab.add_argument("--zipf-s", dest="zipf_s", type=float, default=2.0)
    p_stab.add_argument(
        "--mode", choices=["structured", "exhaustive"], default="structured"
    )
    p_stab.set_defaults(func=_cmd_stability)

    p_sim = sub.add_parser("simulate", help="run the payment simulator")
    add_snapshot_args(p_sim)
    p_sim.add_argument("--horizon", type=float, default=100.0)
    p_sim.add_argument("--tx-scale", type=float, default=0.5)
    p_sim.add_argument("--tx-max", type=float, default=5.0)
    p_sim.add_argument(
        "--backend", choices=["event", "batched"], default="event",
        help="simulation backend: the discrete-event queue or the "
        "vectorised batched fast path (identical metrics, large traces "
        "run several times faster)",
    )
    p_sim.add_argument(
        "--trace-out", default=None, metavar="SPANS_JSONL",
        help="stream the instrumentation trace (spans/events, one JSON "
        "record per line) to this file",
    )
    p_sim.set_defaults(func=_cmd_simulate)

    p_est = sub.add_parser(
        "estimate", help="round-trip parameter estimation on simulated traffic"
    )
    add_snapshot_args(p_est)
    p_est.add_argument("--samples", type=int, default=1000)
    p_est.add_argument("--sender-rate", type=float, default=1.0)
    p_est.set_defaults(func=_cmd_estimate)

    p_run = sub.add_parser(
        "run-scenario", help="execute a scenario described as a JSON file"
    )
    p_run.add_argument("scenario", help="scenario JSON path")
    p_run.add_argument(
        "--seed", type=int, default=None, help="override the scenario's seed"
    )
    p_run.add_argument(
        "--backend", choices=["event", "batched"], default=None,
        help="override the scenario's simulation backend",
    )
    p_run.add_argument(
        "--profile", action="store_true",
        help="instrument the run and print the hot-spot report "
        "(results are bit-identical either way)",
    )
    p_run.set_defaults(func=_cmd_run_scenario)

    p_prof = sub.add_parser(
        "profile",
        help="run a scenario instrumented and print the hot-spot report",
    )
    p_prof.add_argument("scenario", help="scenario JSON path")
    p_prof.add_argument(
        "--seed", type=int, default=None, help="override the scenario's seed"
    )
    p_prof.add_argument(
        "--backend", choices=["event", "batched"], default=None,
        help="override the scenario's simulation backend",
    )
    p_prof.add_argument(
        "--top", type=int, default=10,
        help="rows per hot-spot table section",
    )
    p_prof.add_argument(
        "--trace-out", default=None, metavar="SPANS_JSONL",
        help="also stream the span/event trace to this JSONL file",
    )
    p_prof.add_argument(
        "--output", default=None, metavar="TELEMETRY_JSON",
        help="write the schema-versioned RunTelemetry document here",
    )
    p_prof.set_defaults(func=_cmd_profile)

    p_sweep = sub.add_parser(
        "sweep", help="evaluate a scenario over a grid of overrides"
    )
    p_sweep.add_argument("scenario", help="base scenario JSON path")
    p_sweep.add_argument(
        "--set",
        action="append",
        metavar="PATH=V1[,V2,...]",
        help="grid dimension as a dotted override path and its values; "
        "repeatable (e.g. --set topology.params.n=10,20,50). A JSON "
        "array is taken as the explicit value list, which allows "
        "list-valued parameters",
    )
    p_sweep.add_argument(
        "--executor", choices=["serial", "process"], default="serial"
    )
    p_sweep.add_argument(
        "--workers", type=int, default=None, help="process-pool size"
    )
    p_sweep.add_argument(
        "--output", help="write rows as JSON here instead of printing a table"
    )
    p_sweep.add_argument(
        "--verbose", action="store_true", help="log each grid point to stderr"
    )
    p_sweep.add_argument(
        "--cache", default=None, metavar="PATH",
        help="content-addressed result store: grid points whose resolved "
        "scenario hash is already stored are served without re-execution",
    )
    p_sweep.set_defaults(func=_cmd_sweep)

    p_atk = sub.add_parser(
        "attack",
        help="adversarial traffic: jam / deplete / grief a topology and "
        "report the damage vs an honest baseline",
    )
    p_atk.add_argument(
        "--topology",
        choices=sorted(_ATTACK_TOPOLOGY_SIZE_PARAM),
        default="star",
    )
    p_atk.add_argument(
        "--size", type=int, default=9, help="number of nodes (all topologies)"
    )
    p_atk.add_argument(
        "--balance", type=float, default=10.0,
        help="per-side channel balance of the built topology "
        "(ignored for --topology ba, which draws its own capacities)",
    )
    p_atk.add_argument(
        "--strategy",
        choices=["slow-jamming", "liquidity-depletion", "fee-griefing"],
        default="slow-jamming",
    )
    p_atk.add_argument(
        "--budget", type=float, default=1000.0,
        help="attacker capital endowment",
    )
    p_atk.add_argument(
        "--victim", default=None,
        help="node id to target (default: highest-betweenness node)",
    )
    p_atk.add_argument(
        "--slot-cap", dest="slot_cap", type=int, default=None,
        help="max_accepted_htlcs applied to every pre-attack channel "
        "(both baseline and attacked run)",
    )
    p_atk.add_argument(
        "--amount", type=float, default=None, help="per-HTLC attack amount"
    )
    p_atk.add_argument(
        "--hold-time", dest="hold_time", type=float, default=None,
        help="how long each adversarial HTLC is held",
    )
    p_atk.add_argument("--horizon", type=float, default=40.0)
    p_atk.add_argument("--seed", type=int, default=7)
    p_atk.add_argument("--zipf-s", dest="zipf_s", type=float, default=1.0)
    p_atk.add_argument(
        "--backend", choices=["event", "batched"], default="event",
        help="simulation engine; both produce bit-identical reports, "
        "batched is the fast path",
    )
    p_atk.add_argument(
        "--fee-policy", dest="fee_policy",
        choices=["success-only", "upfront"], default="success-only",
        help="two-sided fee policy: 'upfront' additionally charges "
        "--upfront-base + --upfront-rate * amount per placed hop on "
        "every attempt, settle or not",
    )
    p_atk.add_argument(
        "--upfront-base", dest="upfront_base", type=float, default=0.0,
        help="flat per-attempt charge of the upfront policy",
    )
    p_atk.add_argument(
        "--upfront-rate", dest="upfront_rates", type=float, nargs="+",
        default=[0.05], metavar="RATE",
        help="proportional per-attempt rate(s): the first applies to a "
        "single '--fee-policy upfront' run; all of them (strictly "
        "increasing) form the --countermeasures sweep axis",
    )
    p_atk.add_argument(
        "--compare", action="store_true",
        help="sweep the budget over star/path/circle equilibria and print "
        "the resilience table instead of a single report",
    )
    p_atk.add_argument(
        "--countermeasures", action="store_true",
        help="sweep success-only vs upfront fee policies (--upfront-rate "
        "values) over star/path/circle equilibria and print attacker "
        "cost/ROI per policy",
    )
    p_atk.add_argument(
        "--cache", default=None, metavar="PATH",
        help="content-addressed result store for --countermeasures "
        "(repeated sweeps re-execute only changed grid points)",
    )
    p_atk.add_argument(
        "--budgets", type=float, nargs="+", default=None,
        help="budgets for --compare (default: just --budget)",
    )
    p_atk.add_argument(
        "--executor", choices=["serial", "process"], default="serial",
        help="grid executor for --compare",
    )
    p_atk.add_argument(
        "--workers", type=int, default=None, help="process-pool size"
    )
    p_atk.set_defaults(func=_cmd_attack)

    p_ev = sub.add_parser(
        "evolve",
        help="evolve a topology over epochs of arrivals, churn, traffic "
        "and best-response dynamics; prints the JSON trajectory",
    )
    p_ev.add_argument(
        "--topology",
        choices=sorted(_ATTACK_TOPOLOGY_SIZE_PARAM),
        default="star",
    )
    p_ev.add_argument(
        "--size", type=int, default=6, help="number of nodes (all topologies)"
    )
    p_ev.add_argument(
        "--balance", type=float, default=10.0,
        help="per-side channel balance of the built topology "
        "(ignored for --topology ba)",
    )
    p_ev.add_argument("--epochs", type=int, default=10)
    p_ev.add_argument("--seed", type=int, default=7)
    p_ev.add_argument(
        "--arrival-rate", dest="arrival_rate", type=float, default=0.0,
        help="mean Poisson arrivals per epoch (0 disables growth)",
    )
    p_ev.add_argument(
        "--join-algorithm", dest="join_algorithm",
        choices=["greedy", "random-attach"], default="greedy",
        help="how arriving nodes place their channels",
    )
    p_ev.add_argument(
        "--join-budget", dest="join_budget", type=float, default=4.0,
        help="budget of each arriving node (greedy join only)",
    )
    p_ev.add_argument(
        "--churn-rate", dest="churn_rate", type=float, default=0.0,
        help="per-node departure probability per epoch (0 disables churn)",
    )
    p_ev.add_argument(
        "--horizon", type=float, default=20.0,
        help="traffic-epoch length in simulated time units (batched "
        "backend; 0 disables traffic)",
    )
    p_ev.add_argument(
        "--utility", choices=["analytic", "empirical"], default="analytic",
        help="what best responses maximise: the Section IV closed form or "
        "the revenue observed by replaying the epoch's traffic",
    )
    p_ev.add_argument(
        "--sample", type=int, default=None,
        help="nodes swept per best-response phase (default: all)",
    )
    p_ev.add_argument(
        "--mode", choices=["structured", "exhaustive", "sampled"],
        default="structured", help="deviation family per swept node",
    )
    p_ev.add_argument("-a", type=float, default=0.1)
    p_ev.add_argument("-b", type=float, default=0.1)
    p_ev.add_argument("--edge-cost", dest="edge_cost", type=float, default=1.0)
    p_ev.add_argument("--zipf-s", dest="zipf_s", type=float, default=2.0)
    p_ev.add_argument(
        "--output", help="write the JSON trajectory here instead of stdout"
    )
    p_ev.add_argument(
        "--emergence", action="store_true",
        help="sweep star/path/circle with these settings and print the "
        "emergence table instead of one trajectory",
    )
    p_ev.add_argument(
        "--executor", choices=["serial", "process"], default="serial",
        help="grid executor for --emergence",
    )
    p_ev.add_argument(
        "--workers", type=int, default=None, help="process-pool size"
    )
    p_ev.set_defaults(func=_cmd_evolve)

    def add_client_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("--host", default="127.0.0.1")
        p.add_argument("--port", type=int, default=8923)
        p.add_argument(
            "--timeout", type=float, default=600.0,
            help="per-request socket timeout in seconds",
        )

    p_serve = sub.add_parser(
        "serve",
        help="run the scenario service daemon (JSON lines over "
        "localhost TCP; content-addressed result store; async job queue)",
    )
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument(
        "--port", type=int, default=8923, help="TCP port (0 picks a free one)"
    )
    p_serve.add_argument(
        "--store", default=None,
        help="result-store directory (default: $REPRO_STORE or ~/.cache/repro)",
    )
    p_serve.add_argument(
        "--workers", type=int, default=2, help="concurrent scenario executions"
    )
    p_serve.add_argument(
        "--worker", choices=["process", "thread", "inline"], default="process",
        help="worker kind (process isolates crashes; thread avoids "
        "fork overhead for small scenarios)",
    )
    p_serve.set_defaults(func=_cmd_serve)

    p_sub = sub.add_parser(
        "submit", help="submit a scenario JSON to a running service daemon"
    )
    p_sub.add_argument("scenario", help="scenario JSON path")
    p_sub.add_argument(
        "--seed", type=int, default=None, help="override the scenario's seed"
    )
    p_sub.add_argument(
        "--wait", action="store_true", help="block until the result is ready"
    )
    add_client_args(p_sub)
    p_sub.set_defaults(func=_cmd_submit)

    p_stat = sub.add_parser(
        "status", help="query a running service daemon for job states"
    )
    p_stat.add_argument(
        "hash", nargs="?", default=None,
        help="spec hash to inspect (default: list all jobs)",
    )
    add_client_args(p_stat)
    p_stat.set_defaults(func=_cmd_status)

    p_store = sub.add_parser(
        "store", help="inspect or garbage-collect a result store"
    )
    p_store.add_argument(
        "store_command", choices=["stats", "gc"], metavar="{stats,gc}"
    )
    p_store.add_argument(
        "--store", default=None,
        help="store directory (default: $REPRO_STORE or ~/.cache/repro)",
    )
    p_store.add_argument(
        "--max-entries", dest="max_entries", type=int, default=None,
        help="gc: keep at most this many entries (LRU eviction)",
    )
    p_store.add_argument(
        "--max-bytes", dest="max_bytes", type=int, default=None,
        help="gc: keep at most this many payload bytes (LRU eviction)",
    )
    p_store.set_defaults(func=_cmd_store)

    p_lint = sub.add_parser(
        "lint",
        help="run reprolint, the AST-based invariant linter "
        "(determinism, GraphView immutability, frozen artifacts, ...)",
    )
    add_lint_arguments(p_lint)
    p_lint.set_defaults(func=run_lint)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
