"""``repro`` — a reproduction of "Lightning Creation Games" (ICDCS 2023).

The library models the incentive structure behind payment channel network
(PCN) creation:

* :mod:`repro.network` — channels, the channel graph with its immutable
  CSR :class:`GraphView` snapshots, routing, fees, and pair-weighted
  betweenness (the PCN substrate);
* :mod:`repro.transactions` — the modified-Zipf transaction distribution,
  size distributions, Poisson workloads, and rate estimation (Eq. 2);
* :mod:`repro.snapshots` — synthetic Lightning-like topologies and
  describegraph-style snapshot IO;
* :mod:`repro.core` — the joining user's utility function (Section II-C)
  and the optimisation algorithms of Section III;
* :mod:`repro.equilibrium` — the network creation game of Section IV:
  Nash-equilibrium checks and the closed-form theorem conditions;
* :mod:`repro.simulation` — a discrete-event payment simulator providing
  the empirical counterparts of the analytic quantities;
* :mod:`repro.analysis` — sweep and table helpers for the experiments;
* :mod:`repro.scenarios` — the declarative scenario layer: JSON-round-trip
  specs, plugin registries, and the serial/parallel scenario runner that
  every driver (CLI, examples, sweeps) goes through;
* :mod:`repro.attacks` — the adversarial traffic engine: channel jamming,
  liquidity griefing, and baseline-vs-attacked damage reports over the
  same discrete-event substrate;
* :mod:`repro.evolution` — the traffic-coupled network evolution engine:
  epoch-based arrivals, churn with realised closure costs, batched
  traffic epochs, and empirical best-response dynamics recording
  emergence trajectories.

Quickstart::

    from repro import Scenario, ScenarioRunner, TopologySpec, AlgorithmSpec

    scenario = Scenario(
        topology=TopologySpec("ba", {"n": 50}),
        algorithm=AlgorithmSpec("greedy", {"budget": 10.0, "lock": 1.0}),
        seed=7,
    )
    result = ScenarioRunner().run(scenario)
    print(result.optimisation.summary())

The lower-level models remain available for direct use::

    from repro import ModelParameters, JoiningUserModel, greedy_fixed_funds
    from repro.snapshots import barabasi_albert_snapshot

    graph = barabasi_albert_snapshot(50, seed=7)
    model = JoiningUserModel(graph, "me", ModelParameters())
    result = greedy_fixed_funds(model, budget=10.0, lock=1.0)
    print(result.summary())
"""

from .errors import (
    BudgetExceeded,
    ChannelNotFound,
    DuplicateChannel,
    GraphError,
    HtlcError,
    InsufficientBalance,
    InvalidParameter,
    NodeNotFound,
    ReproError,
    RoutingError,
    SimulationError,
    SnapshotFormatError,
)
from .params import DEFAULT_PARAMS, ModelParameters
from .network import (
    BetweennessArrays,
    Channel,
    ChannelGraph,
    GraphView,
    Router,
    betweenness_arrays,
)
from .core import (
    Action,
    ActionSpace,
    JoiningUserModel,
    ObjectiveEvaluator,
    OptimisationResult,
    Strategy,
    brute_force,
    continuous_local_search,
    exhaustive_discrete,
    greedy_fixed_funds,
)
from .equilibrium import NetworkGameModel, check_nash
from .simulation import (
    BatchedSimulationEngine,
    ShardedTraceRunner,
    SimulationEngine,
)
from .transactions import TraceArrays
from .scenarios import (
    AlgorithmSpec,
    AttackSpec,
    ChurnSpec,
    EvolutionSpec,
    FeeSpec,
    GrowthSpec,
    Scenario,
    SimulationSpec,
    TopologySpec,
    WorkloadSpec,
    register_algorithm,
    register_attack,
    register_churn,
    register_fee,
    register_growth,
    register_topology,
    register_workload,
)
from .scenarios.runner import ScenarioResult, ScenarioRunner
from .attacks import AttackReport, AttackRunner, AttackStrategy
from .evolution import EvolutionEngine, EvolutionRunner, Trajectory

__version__ = "1.4.0"

__all__ = [
    "Action",
    "ActionSpace",
    "AlgorithmSpec",
    "AttackReport",
    "AttackRunner",
    "AttackSpec",
    "AttackStrategy",
    "BatchedSimulationEngine",
    "BetweennessArrays",
    "BudgetExceeded",
    "Channel",
    "ChannelGraph",
    "ChannelNotFound",
    "ChurnSpec",
    "DEFAULT_PARAMS",
    "DuplicateChannel",
    "EvolutionEngine",
    "EvolutionRunner",
    "EvolutionSpec",
    "FeeSpec",
    "GrowthSpec",
    "GraphError",
    "GraphView",
    "HtlcError",
    "betweenness_arrays",
    "InsufficientBalance",
    "InvalidParameter",
    "JoiningUserModel",
    "ModelParameters",
    "NetworkGameModel",
    "NodeNotFound",
    "ObjectiveEvaluator",
    "OptimisationResult",
    "ReproError",
    "Router",
    "RoutingError",
    "Scenario",
    "ScenarioResult",
    "ScenarioRunner",
    "ShardedTraceRunner",
    "SimulationEngine",
    "SimulationError",
    "SimulationSpec",
    "SnapshotFormatError",
    "Strategy",
    "TopologySpec",
    "TraceArrays",
    "Trajectory",
    "WorkloadSpec",
    "brute_force",
    "check_nash",
    "continuous_local_search",
    "exhaustive_discrete",
    "greedy_fixed_funds",
    "register_algorithm",
    "register_attack",
    "register_churn",
    "register_fee",
    "register_growth",
    "register_topology",
    "register_workload",
    "__version__",
]
