"""Seed resolution: the one sanctioned entropy draw in the library.

Every headline claim of this reproduction — event-vs-batched parity,
byte-identical CLI runs, serial==process sweep equality — rests on all
randomness flowing from explicit seeds. Components therefore never call
into global RNG state themselves; when a caller genuinely supplies no
seed, they route through :func:`resolve_seed`, which draws entropy
*once*, logs the drawn value loudly, and returns it so the run is
replayable after the fact (the engines additionally surface it in
:class:`~repro.simulation.metrics.SimulationMetrics.seed`).

The static linter (:mod:`repro.devtools`) enforces this contract: rule
RPR001 flags every other entropy source in the tree; the single draw
below carries the only sanctioned suppression.
"""

from __future__ import annotations

import logging
from typing import Optional

import numpy as np

__all__ = ["resolve_seed"]

logger = logging.getLogger("repro.determinism")


def resolve_seed(seed: Optional[int] = None) -> int:
    """Return a concrete integer seed, drawing entropy loudly if needed.

    With an explicit ``seed`` this is the identity (coerced to ``int``).
    With ``seed=None`` it draws one entropy-based seed and logs it at
    WARNING level, so any "unseeded" run can still be replayed exactly by
    passing the logged value back in.
    """
    if seed is not None:
        return int(seed)
    drawn = int(
        np.random.SeedSequence().entropy % (2 ** 63)  # reprolint: disable=RPR001
    )
    logger.warning(
        "no seed supplied; drew entropy seed %d (pass seed=%d to replay "
        "this run)", drawn, drawn,
    )
    return drawn
