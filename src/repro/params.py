"""Model parameters shared across the library.

The paper's model (Section II) is parameterised by a handful of scalars.
:class:`ModelParameters` gathers them in one frozen dataclass so that every
component (utility model, equilibrium analysis, simulator) reads the same
values, and so experiments can sweep a single object.

Notation mapping to the paper:

==============  =====================================================
attribute       paper symbol / meaning
==============  =====================================================
``onchain_cost``        ``C`` — total expected on-chain cost per channel
                        per party (C/2 opening share + C/2 expected
                        closing share, Section II-C)
``opportunity_rate``    ``r`` — opportunity cost per locked coin,
                        ``l_u = r * c_u``
``fee_avg``             ``f_avg`` — average routing fee earned per
                        forwarded transaction (Eq. 3)
``fee_out_avg``         ``f^T_avg`` — average fee paid per intermediary
                        hop when sending own transactions
``total_tx_rate``       ``N`` — network-wide transactions per unit time
``user_tx_rate``        ``N_u`` — transactions sent by the (new) user
                        per unit time
``zipf_s``              ``s`` — Zipf scale parameter of the transaction
                        distribution (Section II-B)
``max_tx_size``         ``T`` — maximum transaction size
``epsilon``             ``ε`` — marginal on-chain cost increment used in
                        Theorem 6's bound
==============  =====================================================
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from .errors import InvalidParameter

__all__ = ["ModelParameters", "DEFAULT_PARAMS"]


@dataclass(frozen=True)
class ModelParameters:
    """Scalar parameters of the Lightning creation-game model.

    All parameters are expressed in abstract coin/time units; the paper
    never fixes currency units, only relative magnitudes.
    """

    onchain_cost: float = 1.0
    opportunity_rate: float = 0.01
    fee_avg: float = 0.1
    fee_out_avg: float = 0.1
    total_tx_rate: float = 100.0
    user_tx_rate: float = 10.0
    zipf_s: float = 1.0
    max_tx_size: float = 10.0
    epsilon: float = 0.0

    def __post_init__(self) -> None:
        positives = {
            "onchain_cost": self.onchain_cost,
            "total_tx_rate": self.total_tx_rate,
            "user_tx_rate": self.user_tx_rate,
            "max_tx_size": self.max_tx_size,
        }
        for name, value in positives.items():
            if value <= 0:
                raise InvalidParameter(f"{name} must be > 0, got {value}")
        non_negatives = {
            "opportunity_rate": self.opportunity_rate,
            "zipf_s": self.zipf_s,
            "epsilon": self.epsilon,
            # zero fees are meaningful: Section IV's pure-topology studies
            "fee_avg": self.fee_avg,
            "fee_out_avg": self.fee_out_avg,
        }
        for name, value in non_negatives.items():
            if value < 0:
                raise InvalidParameter(f"{name} must be >= 0, got {value}")

    def replace(self, **changes: float) -> "ModelParameters":
        """Return a copy with ``changes`` applied (validated)."""
        return dataclasses.replace(self, **changes)

    def channel_cost(self, locked: float) -> float:
        """Total cost ``L_u(v, l) = C + r*l`` of one channel for one party.

        ``locked`` is the capital this party locks into the channel.
        """
        if locked < 0:
            raise InvalidParameter(f"locked capital must be >= 0, got {locked}")
        return self.onchain_cost + self.opportunity_rate * locked

    def onchain_alternative_cost(self) -> float:
        """``C_u = N_u * C / 2`` — expected cost of transacting on-chain only.

        Used by the benefit function of Section III-D.
        """
        return self.user_tx_rate * self.onchain_cost / 2.0

    def as_dict(self) -> dict:
        """Plain-dict view, convenient for logging and sweep tables."""
        return dataclasses.asdict(self)


#: Shared default parameter set used by examples and tests.
DEFAULT_PARAMS = ModelParameters()
