"""Traffic-coupled network evolution: arrivals, churn, best-response.

The dynamic companion to the paper's static Section IV analysis: an
epoch-based engine that grows a channel network (arrival processes +
join algorithms), shrinks it (churn processes realising closure costs),
measures it (batched traffic epochs), and lets incumbents adapt
(empirical or analytic best-response dynamics) — recording a
:class:`Trajectory` of topology statistics, welfare, revenue
concentration, and distance to Nash equilibrium.

Importing this package registers the builtin growth/churn plugins (and
the ``"random-attach"`` join algorithm) into the scenario registries.
"""

from .churn import ChurnProcess, DegreeBiasedChurn, UniformChurn
from .engine import EvolutionEngine
from .growth import ArrivalProcess, FixedGrowth, PoissonGrowth, random_attach
from .runner import EvolutionOutcome, EvolutionRunner
from .trajectory import EpochRecord, Trajectory, classify_topology, gini
from .utility import (
    AnalyticUtilityProvider,
    EmpiricalUtilityProvider,
    UtilityProvider,
)

__all__ = [
    "AnalyticUtilityProvider",
    "ArrivalProcess",
    "ChurnProcess",
    "DegreeBiasedChurn",
    "EmpiricalUtilityProvider",
    "EpochRecord",
    "EvolutionEngine",
    "EvolutionOutcome",
    "EvolutionRunner",
    "FixedGrowth",
    "PoissonGrowth",
    "Trajectory",
    "UniformChurn",
    "UtilityProvider",
    "classify_topology",
    "gini",
    "random_attach",
]
