"""The epoch-based network evolution engine.

The paper analyses the creation game at a *static* equilibrium; this
engine asks the dynamic question behind it — which topologies emerge and
persist when the network keeps changing. Each epoch runs four phases in
a fixed order:

1. **arrivals** — the :class:`~repro.evolution.growth.ArrivalProcess`
   admits new nodes, each joining through a registered
   :class:`JoinAlgorithm <repro.scenarios.registry.JoinAlgorithm>`;
2. **churn** — the :class:`~repro.evolution.churn.ChurnProcess` departs
   nodes; every closed channel realises Section II-C closure costs
   through :class:`~repro.network.lifecycle.ChannelLifecycle`;
3. **traffic** — a Poisson workload over ``traffic_horizon`` time units
   replays on the batched backend
   (:class:`~repro.simulation.fastpath.BatchedSimulationEngine`),
   measured on a copy of the graph so epochs observe steady-state
   liquidity, and feeds per-node revenue / success rates into the
   :class:`~repro.evolution.utility.UtilityProvider`;
4. **best response** — a sampled subset of nodes is swept in canonical
   order; each node's best deviation (within the configured family and
   ``add_budget``) is applied when strictly improving.

Everything stochastic draws from one seeded generator (plus per-epoch
seeds derived with :func:`~repro.scenarios.grid.derive_seed`), so a run
is bit-identical for a fixed seed. The result is a
:class:`~repro.evolution.trajectory.Trajectory` with per-epoch topology
statistics, welfare, revenue Gini, and the empirical distance-to-NE.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..equilibrium.deviations import (
    Deviation,
    apply_deviation,
    exhaustive_deviations,
    sampled_deviations,
    structured_deviations,
)
from ..equilibrium.nash import best_response, check_nash
from ..equilibrium.node_utility import NetworkGameModel
from ..network.fees import FeeFunction
from ..network.graph import ChannelGraph
from ..network.lifecycle import ChannelLifecycle, sample_close_mode
from ..obs import ObsSession, default_session
from ..scenarios.grid import derive_seed
from ..scenarios.specs import EvolutionSpec
from ..simulation.fastpath import BatchedSimulationEngine
from ..simulation.metrics import SimulationMetrics
from ..transactions.workload import PoissonWorkload, Transaction
from ..transactions.zipf import ModifiedZipf
from .churn import ChurnProcess
from .growth import ArrivalProcess
from .trajectory import EpochRecord, Trajectory, classify_topology, gini
from .utility import (
    AnalyticUtilityProvider,
    EmpiricalUtilityProvider,
    UtilityProvider,
)

__all__ = ["EvolutionEngine"]

#: Node-id prefix for arriving nodes (topology builders use ``v...``).
ARRIVAL_PREFIX = "n"


class EvolutionEngine:
    """Evolves a channel graph over epochs of arrivals/churn/traffic/BR.

    Args:
        graph: the initial topology (copied; the engine's working graph
            is exposed as :attr:`graph` and reflects the latest epoch).
        spec: the :class:`~repro.scenarios.specs.EvolutionSpec`.
        growth: arrival process (``None`` = no arrivals).
        churn: departure process (``None`` = no churn).
        workload_factory: ``(graph, seed) -> PoissonWorkload`` building
            each epoch's traffic on the *current* node set. Defaults to
            a unit-rate modified-Zipf workload at the spec's ``zipf_s``.
        fee: fee function for the traffic epochs and the empirical
            provider's replays.
        utility_provider: override the provider the spec would build.
        seed: master seed; every stochastic phase derives from it.
        obs: instrumentation session — per-phase wall time, per-epoch
            trace events, traffic-engine counters. Never touches the
            run's RNG streams, so results are obs-invariant.
    """

    def __init__(
        self,
        graph: ChannelGraph,
        spec: EvolutionSpec,
        growth: Optional[ArrivalProcess] = None,
        churn: Optional[ChurnProcess] = None,
        workload_factory: Optional[
            Callable[[ChannelGraph, int], PoissonWorkload]
        ] = None,
        fee: Optional[FeeFunction] = None,
        utility_provider: Optional[UtilityProvider] = None,
        seed: int = 0,
        obs: Optional[ObsSession] = None,
    ) -> None:
        self.graph = graph.copy()
        self.spec = spec
        self.growth = growth
        self.churn = churn
        self.fee = fee
        self.seed = seed
        self._obs = obs if obs is not None else default_session()
        self._rng = np.random.default_rng(seed)
        self._lifecycle = ChannelLifecycle(spec.onchain_fee)
        self._arrival_counter = 0
        self.model = NetworkGameModel(
            a=spec.a, b=spec.b, edge_cost=spec.edge_cost, zipf_s=spec.zipf_s
        )
        if utility_provider is not None:
            self.provider: UtilityProvider = utility_provider
        elif spec.utility == "analytic":
            self.provider = AnalyticUtilityProvider(self.model)
        else:
            self.provider = EmpiricalUtilityProvider(
                edge_cost=spec.edge_cost, fee=fee
            )
        if workload_factory is None:
            workload_factory = self._default_workload
        self._workload_factory = workload_factory

    # -- phases ----------------------------------------------------------------

    def _default_workload(
        self, graph: ChannelGraph, seed: int
    ) -> PoissonWorkload:
        return PoissonWorkload(
            ModifiedZipf(graph, s=self.spec.zipf_s),
            {node: 1.0 for node in graph.nodes},
            seed=seed,
        )

    def _next_arrival_id(self) -> str:
        while True:
            node_id = f"{ARRIVAL_PREFIX}{self._arrival_counter:05d}"
            self._arrival_counter += 1
            if node_id not in self.graph:
                return node_id

    def _arrival_phase(self, epoch_seed: int) -> int:
        if self.growth is None:
            return 0
        joined = 0
        count = self.growth.arrivals(self._rng)
        for index in range(count):
            node_id = self._next_arrival_id()
            self.growth.join(
                self.graph, node_id, seed=derive_seed(epoch_seed, index)
            )
            # An empty join strategy opens no channel, so the arrival
            # never actually enters the graph ("failed to join").
            if node_id in self.graph:
                joined += 1
        return joined

    def _churn_phase(self) -> Tuple[int, float]:
        if self.churn is None:
            return 0, 0.0
        departures = self.churn.departures(self.graph, self._rng)
        closure_costs = 0.0
        for node in departures:
            for _channel in self.graph.channels_of(node):
                costs = self._lifecycle.realise(
                    close_mode=sample_close_mode(self._rng)
                )
                closure_costs += costs.close_cost_u + costs.close_cost_v
            self.graph.remove_node(node)
        return len(departures), closure_costs

    def _traffic_phase(
        self, epoch_seed: int
    ) -> Tuple[Optional[SimulationMetrics], List[Transaction]]:
        if self.spec.traffic_horizon <= 0:
            return None, []
        workload = self._workload_factory(self.graph, epoch_seed)
        trace = list(workload.generate(self.spec.traffic_horizon))
        # Measure on a copy: epochs observe steady-state liquidity
        # instead of compounding depletion across the whole run.
        engine = BatchedSimulationEngine(
            self.graph.copy(), fee=self.fee, seed=epoch_seed, obs=self._obs
        )
        metrics = engine.run_trace(trace)
        return metrics, trace

    def _deviation_family(
        self, node: Any, epoch_seed: int
    ) -> Sequence[Deviation]:
        spec = self.spec
        if spec.mode == "structured":
            family: Sequence[Deviation] = structured_deviations(
                self.graph, node, seed=epoch_seed
            )
        elif spec.mode == "exhaustive":
            family = exhaustive_deviations(self.graph, node)
        else:
            family = sampled_deviations(
                self.graph, node, moves=spec.moves_per_node, seed=epoch_seed
            )
        if spec.add_budget is not None:
            family = [d for d in family if len(d.add) <= spec.add_budget]
        return family

    def _best_response_phase(
        self, epoch_seed: int
    ) -> Tuple[List[Dict[str, Any]], float]:
        spec = self.spec
        nodes = sorted(self.graph.nodes, key=str)
        if spec.sample is not None and spec.sample < len(nodes):
            picked = self._rng.choice(
                len(nodes), size=spec.sample, replace=False
            )
            nodes = [nodes[i] for i in sorted(picked)]
        moves: List[Dict[str, Any]] = []
        max_gain = 0.0
        for node in nodes:
            family = self._deviation_family(node, epoch_seed)
            if not family:
                continue
            response = best_response(
                self.graph,
                node,
                self.provider,
                tolerance=spec.tolerance,
                balance=spec.balance,
                deviations=family,
            )
            if not response.can_improve:
                continue
            gain = float(response.gain)
            max_gain = max(max_gain, gain)
            deviation = response.best_deviation
            self.graph = apply_deviation(
                self.graph, node, deviation, balance=spec.balance
            )
            self.provider.rebase(self.graph)
            moves.append({
                "node": str(node),
                "gain": gain,
                "add": sorted(str(v) for v in deviation.add),
                "remove": sorted(str(v) for v in deviation.remove),
            })
        return moves, max_gain

    def _active(self) -> bool:
        """Whether any stochastic growth/churn process can still fire."""
        if self.growth is not None and self.growth.active():
            return True
        return self.churn is not None and self.churn.active()

    # -- the run ---------------------------------------------------------------

    def run(self) -> Trajectory:
        """Execute up to ``spec.epochs`` epochs and return the trajectory."""
        spec = self.spec
        records: List[EpochRecord] = []
        quiet_epochs = 0
        converged = False
        totals = {
            "total_arrivals": 0,
            "total_departures": 0,
            "total_closure_costs": 0.0,
            "total_moves": 0,
        }
        obs = self._obs
        for epoch in range(spec.epochs):
            epoch_seed = derive_seed(self.seed, epoch)
            with obs.phase("evolution.arrivals"):
                arrivals = self._arrival_phase(epoch_seed)
            with obs.phase("evolution.churn"):
                departures, closure_costs = self._churn_phase()
            with obs.phase("evolution.traffic"):
                metrics, trace = self._traffic_phase(epoch_seed)
            with obs.phase("evolution.best_response"):
                self.provider.prepare(self.graph, metrics, trace, epoch_seed)
                moves, max_gain = self._best_response_phase(epoch_seed)
            if obs.enabled:
                obs.registry.counter("evolution.epochs").inc()
                obs.event(
                    "evolution.epoch",
                    epoch=epoch, arrivals=arrivals, departures=departures,
                    moves=len(moves), nodes=len(self.graph),
                    channels=self.graph.num_channels(),
                )
            totals["total_arrivals"] += arrivals
            totals["total_departures"] += departures
            totals["total_closure_costs"] += closure_costs
            totals["total_moves"] += len(moves)
            if metrics is not None:
                revenue_gini = gini(
                    metrics.revenue.get(node, 0.0) for node in self.graph.nodes
                )
                attempted, succeeded = metrics.attempted, metrics.succeeded
                success_rate = metrics.success_rate
                total_revenue = sum(metrics.revenue.values())
            else:
                revenue_gini = 0.0
                attempted = succeeded = 0
                success_rate = total_revenue = 0.0
            records.append(EpochRecord(
                epoch=epoch,
                nodes=len(self.graph),
                channels=self.graph.num_channels(),
                arrivals=arrivals,
                departures=departures,
                closure_costs=closure_costs,
                attempted=attempted,
                succeeded=succeeded,
                success_rate=success_rate,
                total_revenue=total_revenue,
                revenue_gini=revenue_gini,
                moves=len(moves),
                max_gain=max_gain,
                welfare=self.provider.welfare(self.graph),
                topology=classify_topology(self.graph),
                move_log=tuple(moves),
            ))
            if arrivals == 0 and departures == 0 and not moves:
                quiet_epochs += 1
                # A quiet epoch only certifies convergence when no
                # stochastic process remains active: a zero-arrival
                # draw of a positive-rate Poisson process is luck, not
                # a rest point — such runs execute every epoch.
                if quiet_epochs >= spec.patience and not self._active():
                    converged = True
                    break
            else:
                quiet_epochs = 0
        nash_stable: Optional[bool] = None
        final_max_gain: Optional[float] = None
        if spec.final_nash_check:
            check_mode = "exhaustive" if spec.mode == "exhaustive" else "structured"
            report = check_nash(
                self.graph, self.model, mode=check_mode, seed=self.seed,
                tolerance=spec.tolerance, balance=spec.balance,
            )
            nash_stable = report.is_nash
            final_max_gain = float(report.max_gain())
        return Trajectory(
            records=tuple(records),
            converged=converged,
            epochs_run=len(records),
            seed=self.seed,
            final_topology=classify_topology(self.graph),
            nash_stable=nash_stable,
            final_max_gain=final_max_gain,
            totals=dict(totals),
        )
