"""Scenario -> evolution-engine wiring (the ``evolution`` stage driver).

Mirrors :class:`~repro.attacks.runner.AttackRunner`: resolves the
scenario's specs through :mod:`repro.scenarios.factory` (topology,
workload, fee, growth, churn) and drives one
:class:`~repro.evolution.engine.EvolutionEngine` run. The scenario's
``workload``/``fee`` sections configure the per-epoch traffic exactly
like a plain simulation stage would — same builders, same seed
injection — with per-epoch workload seeds derived from the scenario
seed so epochs see decorrelated (but reproducible) traffic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..errors import ScenarioError
from ..network.graph import ChannelGraph
from ..obs import ObsSession, default_session
from ..scenarios.factory import (
    build_churn,
    build_fee,
    build_growth,
    build_topology,
    build_workload,
)
from ..scenarios.specs import Scenario
from ..transactions.workload import PoissonWorkload
from .engine import EvolutionEngine
from .trajectory import Trajectory

__all__ = ["EvolutionOutcome", "EvolutionRunner"]


@dataclass
class EvolutionOutcome:
    """What one evolution stage produced: the final graph + trajectory."""

    graph: ChannelGraph
    trajectory: Trajectory


class EvolutionRunner:
    """Executes the ``evolution`` stage of a scenario."""

    def __init__(self, obs: Optional[ObsSession] = None) -> None:
        self._obs = obs if obs is not None else default_session()

    def run(self, scenario: Scenario) -> EvolutionOutcome:
        spec = scenario.evolution
        if spec is None:
            raise ScenarioError("scenario has no evolution section")
        graph = build_topology(scenario.topology, seed=scenario.seed)
        growth = None if spec.growth is None else build_growth(spec.growth)
        churn = None if spec.churn is None else build_churn(spec.churn)
        fee = build_fee(scenario)
        scenario_doc = scenario.to_dict()

        def workload_factory(
            epoch_graph: ChannelGraph, seed: int
        ) -> PoissonWorkload:
            epoch_scenario = Scenario.from_dict(
                {**scenario_doc, "seed": seed}
            )
            return build_workload(epoch_scenario, epoch_graph)

        engine = EvolutionEngine(
            graph,
            spec,
            growth=growth,
            churn=churn,
            workload_factory=workload_factory,
            fee=fee,
            seed=scenario.seed,
            obs=self._obs,
        )
        trajectory = engine.run()
        return EvolutionOutcome(graph=engine.graph, trajectory=trajectory)
