"""Utility providers for the evolution engine's best-response phase.

:func:`~repro.equilibrium.nash.best_response` only needs an object with
``node_utility(graph, node)``; the engine therefore accepts any
:class:`UtilityProvider`. Two implementations ship:

* :class:`AnalyticUtilityProvider` — the Section IV
  :class:`~repro.equilibrium.node_utility.NetworkGameModel` closed-form
  utility (rank factors recomputed per candidate graph);
* :class:`EmpiricalUtilityProvider` — the traffic-coupled provider: the
  epoch's payment trace is replayed on every candidate graph through the
  batched backend (:class:`~repro.simulation.fastpath
  .BatchedSimulationEngine`) and a node's utility is its *observed*
  ``revenue - fees_paid - edge_cost * degree``. This is what makes the
  dynamics empirical: a deviation is judged by the traffic it would
  actually have routed, not by an analytic proxy.

``prepare(graph, metrics, trace, seed)`` is called once per epoch after
the traffic stage, so providers can cache whatever the epoch's
evaluations share.
"""

from __future__ import annotations

from typing import Hashable, List, Optional, Protocol, Sequence, runtime_checkable

from ..equilibrium.node_utility import NetworkGameModel
from ..equilibrium.welfare import social_welfare
from ..errors import SimulationError
from ..network.fees import FeeFunction
from ..network.graph import ChannelGraph
from ..simulation.fastpath import BatchedSimulationEngine
from ..simulation.metrics import SimulationMetrics
from ..transactions.workload import Transaction

__all__ = [
    "AnalyticUtilityProvider",
    "EmpiricalUtilityProvider",
    "UtilityProvider",
]


@runtime_checkable
class UtilityProvider(Protocol):
    """What the evolution engine needs from a utility model."""

    def prepare(
        self,
        graph: ChannelGraph,
        metrics: Optional[SimulationMetrics],
        trace: Sequence[Transaction],
        seed: int,
    ) -> None:
        """Adopt the epoch's traffic outcome (called once per epoch)."""
        ...

    def node_utility(self, graph: ChannelGraph, node: Hashable) -> float:
        """Utility of ``node`` on ``graph`` (also used on deviated copies)."""
        ...

    def rebase(self, graph: ChannelGraph) -> None:
        """Adopt ``graph`` as the new base state (after an applied move).

        Lets providers that measure by replay cache base-graph metrics
        across the remaining evaluations of the epoch.
        """
        ...

    def welfare(self, graph: ChannelGraph) -> float:
        """Total welfare of ``graph`` under this provider's utility."""
        ...


class AnalyticUtilityProvider:
    """The closed-form Section IV utility (no traffic coupling)."""

    def __init__(self, model: NetworkGameModel) -> None:
        self.model = model

    def prepare(self, graph, metrics, trace, seed) -> None:  # noqa: ARG002
        return None

    def rebase(self, graph: ChannelGraph) -> None:  # noqa: ARG002
        return None

    def node_utility(self, graph: ChannelGraph, node: Hashable) -> float:
        return self.model.node_utility(graph, node)

    def welfare(self, graph: ChannelGraph) -> float:
        return social_welfare(graph, self.model)


class EmpiricalUtilityProvider:
    """Revenue-based utility measured by replaying the epoch's trace.

    Args:
        edge_cost: per-channel cost ``l`` charged to each endpoint per
            epoch (the analytic model's cost term, kept so empirical and
            analytic runs price channels identically).
        fee: the scenario's fee function (``None`` = channel-configured
            fees), forwarded to the batched engine.
        fee_forwarding: whether intermediaries charge fees.
        path_selection: the router's tie-break policy.
    """

    def __init__(
        self,
        edge_cost: float = 1.0,
        fee: Optional[FeeFunction] = None,
        fee_forwarding: bool = True,
        path_selection: str = "random",
    ) -> None:
        self.edge_cost = edge_cost
        self.fee = fee
        self.fee_forwarding = fee_forwarding
        self.path_selection = path_selection
        self._trace: List[Transaction] = []
        self._seed = 0
        self._base_metrics: Optional[SimulationMetrics] = None
        self._base_version: Optional[int] = None
        self._base_graph: Optional[ChannelGraph] = None

    def prepare(
        self,
        graph: ChannelGraph,
        metrics: Optional[SimulationMetrics],
        trace: Sequence[Transaction],
        seed: int,
    ) -> None:
        if metrics is None:
            raise SimulationError(
                "the empirical utility provider needs a traffic epoch; "
                "set EvolutionSpec.traffic_horizon > 0"
            )
        self._trace = list(trace)
        self._seed = seed
        # The unmodified graph was already simulated by the traffic
        # stage — reuse those metrics for every base-utility evaluation
        # of the epoch instead of replaying the trace once per node.
        self._base_metrics = metrics
        self._base_graph = graph
        self._base_version = graph.version

    def rebase(self, graph: ChannelGraph) -> None:
        """Track the engine's working graph after an applied move.

        The next base-utility evaluation replays the trace once and the
        result is cached for every remaining node of the sweep; only
        deviated throwaway copies pay a per-call replay.
        """
        self._base_graph = graph
        self._base_version = graph.version
        self._base_metrics = None

    def _replay(self, graph: ChannelGraph) -> SimulationMetrics:
        engine = BatchedSimulationEngine(
            graph.copy(),
            fee=self.fee,
            fee_forwarding=self.fee_forwarding,
            path_selection=self.path_selection,
            seed=self._seed,
        )
        return engine.run_trace(self._trace)

    def _metrics_for(self, graph: ChannelGraph) -> SimulationMetrics:
        if (
            graph is self._base_graph
            and graph.version == self._base_version
        ):
            if self._base_metrics is None:
                self._base_metrics = self._replay(graph)
            return self._base_metrics
        return self._replay(graph)

    def node_utility(self, graph: ChannelGraph, node: Hashable) -> float:
        metrics = self._metrics_for(graph)
        return (
            metrics.revenue.get(node, 0.0)
            - metrics.fees_paid.get(node, 0.0)
            - self.edge_cost * len(graph.neighbors(node))
        )

    def welfare(self, graph: ChannelGraph) -> float:
        """Observed total: everyone's revenue minus fees minus costs.

        Fees paid to intermediaries cancel against their revenue, so
        this reduces to net value routed minus total channel costs.
        """
        metrics = self._metrics_for(graph)
        total_cost = sum(
            len(graph.neighbors(node)) for node in graph.nodes
        ) * self.edge_cost
        return (
            sum(metrics.revenue.values())
            - sum(metrics.fees_paid.values())
            - total_cost
        )
