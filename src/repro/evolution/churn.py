"""Departure processes: how nodes leave an evolving network.

A churn plugin (``repro.scenarios.registry.CHURN``) builds a
:class:`ChurnProcess`; per epoch it selects which nodes depart. The
engine closes every channel of a departing node through
:class:`~repro.network.lifecycle.ChannelLifecycle`, realising the
paper's Section II-C closure costs (unilateral-u / unilateral-v /
cooperative, equiprobable) so churn is not free — the trajectory
accounts the on-chain fees the network burned.

Selection iterates nodes in canonical (string-sorted) order and draws
one uniform per node, so a churn process is deterministic for a given
RNG state regardless of set/dict iteration order.
"""

from __future__ import annotations

from typing import Hashable, List

import numpy as np

from ..errors import InvalidParameter
from ..network.graph import ChannelGraph
from ..scenarios.registry import register_churn

__all__ = ["ChurnProcess", "DegreeBiasedChurn", "UniformChurn"]

#: Never churn the network below this many nodes by default.
DEFAULT_MIN_NODES = 3


class ChurnProcess:
    """Base departure process.

    Args:
        rate: per-node departure probability per epoch (scaled per node
            by subclasses).
        min_nodes: departures stop once the network would shrink below
            this floor — the evolution engine needs a non-degenerate
            graph to route traffic and evaluate utilities on.
    """

    def __init__(
        self, rate: float = 0.05, min_nodes: int = DEFAULT_MIN_NODES
    ) -> None:
        if not 0.0 <= rate <= 1.0:
            raise InvalidParameter(
                f"churn rate must be in [0, 1], got {rate}"
            )
        if min_nodes < 2:
            raise InvalidParameter(
                f"min_nodes must be >= 2, got {min_nodes}"
            )
        self.rate = rate
        self.min_nodes = min_nodes

    def active(self) -> bool:
        """Whether future epochs can still see departures (see
        :meth:`ArrivalProcess.active
        <repro.evolution.growth.ArrivalProcess.active>`)."""
        return self.rate > 0

    def _prepare(self, graph: ChannelGraph) -> None:
        """Hook: cache per-epoch state before the per-node draws."""

    def _probability(self, graph: ChannelGraph, node: Hashable) -> float:
        raise NotImplementedError

    def departures(
        self, graph: ChannelGraph, rng: np.random.Generator
    ) -> List[Hashable]:
        """The nodes leaving this epoch (capped by ``min_nodes``)."""
        if self.rate == 0.0:
            return []
        allowed = len(graph) - self.min_nodes
        if allowed <= 0:
            return []
        self._prepare(graph)
        out: List[Hashable] = []
        for node in sorted(graph.nodes, key=str):
            # One draw per node even after the cap is hit keeps the RNG
            # stream length a function of the node count alone.
            draw = rng.random()
            if draw < self._probability(graph, node) and len(out) < allowed:
                out.append(node)
        return out


@register_churn("uniform")
class UniformChurn(ChurnProcess):
    """Every node departs independently with probability ``rate``."""

    def _probability(self, graph: ChannelGraph, node: Hashable) -> float:  # noqa: ARG002
        return self.rate


@register_churn("degree-biased")
class DegreeBiasedChurn(ChurnProcess):
    """Departure probability scaled by relative degree.

    A node of degree ``d`` departs with probability
    ``clip(rate * (d / avg_degree) ** bias, 0, 1)``: ``bias > 0``
    preferentially removes hubs (the "does the star survive its center
    churning?" stressor), ``bias < 0`` removes leaves, ``bias = 0``
    degenerates to :class:`UniformChurn`.
    """

    def __init__(
        self,
        rate: float = 0.05,
        bias: float = 1.0,
        min_nodes: int = DEFAULT_MIN_NODES,
    ) -> None:
        super().__init__(rate=rate, min_nodes=min_nodes)
        self.bias = bias
        self._average_degree = 0.0

    def _prepare(self, graph: ChannelGraph) -> None:
        degrees = [graph.degree(v) for v in graph.nodes]
        self._average_degree = (
            sum(degrees) / len(degrees) if degrees else 0.0
        )

    def _probability(self, graph: ChannelGraph, node: Hashable) -> float:
        average = self._average_degree
        if average <= 0:
            return self.rate
        degree = graph.degree(node)
        if degree == 0:
            scaled = self.rate if self.bias <= 0 else 0.0
        else:
            scaled = self.rate * (degree / average) ** self.bias
        return min(max(scaled, 0.0), 1.0)
