"""Arrival processes: how new nodes enter an evolving network.

A growth plugin (``repro.scenarios.registry.GROWTH``) builds an
:class:`ArrivalProcess`: per epoch it samples how many nodes arrive, and
each arrival joins through a registered
:class:`~repro.scenarios.registry.JoinAlgorithm` — the same Section III
optimisers the ``algorithm`` scenario stage uses (``"greedy"``,
``"exhaustive"``, ...), so an evolution run's newcomers place their
channels exactly like the joining-user experiments do.

For large-scale runs the Section III optimisers are overkill per
arrival; the :func:`random_attach` algorithm registered here
(``"random-attach"``) joins by opening ``k`` channels to uniformly
sampled peers without any utility evaluation — the classic
random-attachment null model, and the cheap default of the evolution
benchmark.
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, Mapping, Optional

import numpy as np

from ..core.algorithms.common import OptimisationResult
from ..core.strategy import Action, Strategy
from ..core.utility import JoiningUserModel
from ..errors import InvalidParameter, ScenarioError
from ..network.graph import ChannelGraph
from ..params import ModelParameters
from ..scenarios.registry import ALGORITHMS, register_algorithm, register_growth

__all__ = [
    "ArrivalProcess",
    "FixedGrowth",
    "PoissonGrowth",
    "random_attach",
]


@register_algorithm("random-attach")
def random_attach(
    model: JoiningUserModel,
    k: int = 2,
    lock: float = 1.0,
    seed: Optional[int] = None,
) -> OptimisationResult:
    """Join by attaching to ``k`` uniformly random peers (no optimisation).

    Satisfies the :class:`JoinAlgorithm` protocol so it is usable from
    any ``AlgorithmSpec``/``GrowthSpec``; the reported utility is still
    the model's true utility of the sampled strategy, so random
    attachment stays comparable to the optimisers in sweep tables.
    """
    if k < 1:
        raise InvalidParameter(f"k must be >= 1, got {k}")
    if lock < 0:
        raise InvalidParameter(f"lock must be >= 0, got {lock}")
    rng = np.random.default_rng(seed)
    peers = sorted(model.base_graph.nodes, key=str)
    count = min(k, len(peers))
    chosen = rng.choice(len(peers), size=count, replace=False)
    strategy = Strategy(
        [Action(peers[i], lock) for i in sorted(chosen)]
    )
    utility = model.utility(strategy)
    return OptimisationResult(
        algorithm="random-attach",
        strategy=strategy,
        objective_value=utility,
        utility=utility,
        evaluations=1,
        details={"k": count, "lock": lock},
    )


class ArrivalProcess:
    """Base arrival process: a count sampler plus the join machinery.

    Args:
        algorithm: :class:`JoinAlgorithm` registry key arrivals join
            with.
        params: keyword arguments for the join algorithm.
        model: :class:`~repro.params.ModelParameters` overrides for the
            joining-user model.
    """

    def __init__(
        self,
        algorithm: str = "greedy",
        params: Optional[Mapping[str, Any]] = None,
        model: Optional[Mapping[str, Any]] = None,
    ) -> None:
        self.algorithm = algorithm
        self.params: Dict[str, Any] = dict(
            params if params is not None else {"budget": 4.0, "lock": 1.0}
        )
        self.model: Dict[str, Any] = dict(model or {})

    def arrivals(self, rng: np.random.Generator) -> int:
        """How many nodes arrive this epoch."""
        raise NotImplementedError

    def active(self) -> bool:
        """Whether future epochs can still see arrivals.

        The engine's convergence detection only early-stops a run when
        no stochastic process remains active — a randomly quiet epoch
        of a positive-rate process is not convergence.
        """
        return True

    def join(
        self, graph: ChannelGraph, node_id: Hashable, seed: Optional[int] = None
    ) -> OptimisationResult:
        """Run the join algorithm for ``node_id`` and open its channels.

        The chosen strategy is applied to the *live* graph (channels
        funded ``locked``/``locked``, the dual-funded convention of
        :class:`JoiningUserModel`'s default ``peer_deposit="match"``);
        parallel actions to the same peer merge into one channel so the
        evolved graph stays simple — a batched-backend requirement.
        Algorithms that accept a ``seed`` keyword (e.g.
        ``"random-attach"``) receive the per-arrival seed.
        """
        algorithm = ALGORITHMS.get(self.algorithm)
        try:
            parameters = ModelParameters(**self.model)
        except TypeError as exc:
            raise ScenarioError(
                f"invalid GrowthSpec model overrides {self.model!r}: {exc}"
            ) from exc
        join_model = JoiningUserModel(graph, node_id, parameters)
        params = dict(self.params)
        if seed is not None and _accepts_seed(algorithm):
            params.setdefault("seed", seed)
        try:
            result = algorithm(join_model, **params)
        except TypeError as exc:
            raise ScenarioError(
                f"growth join algorithm {self.algorithm!r} rejected params "
                f"{params!r}: {exc}"
            ) from exc
        locked_by_peer: Dict[Hashable, float] = {}
        for action in result.strategy:
            locked_by_peer[action.peer] = (
                locked_by_peer.get(action.peer, 0.0) + action.locked
            )
        for peer in sorted(locked_by_peer, key=str):
            locked = locked_by_peer[peer]
            graph.add_channel(node_id, peer, locked, locked)
        return result


def _accepts_seed(algorithm: Any) -> bool:
    import inspect

    try:
        signature = inspect.signature(algorithm)
    except (TypeError, ValueError):  # pragma: no cover - builtins
        return False
    return any(
        p.name == "seed" or p.kind is inspect.Parameter.VAR_KEYWORD
        for p in signature.parameters.values()
    )


class PoissonGrowth(ArrivalProcess):
    """Poisson-many arrivals per epoch at mean ``rate``."""

    def __init__(self, rate: float = 1.0, **kwargs: Any) -> None:
        if rate < 0:
            raise InvalidParameter(f"rate must be >= 0, got {rate}")
        super().__init__(**kwargs)
        self.rate = rate

    def arrivals(self, rng: np.random.Generator) -> int:
        if self.rate == 0:
            return 0
        return int(rng.poisson(self.rate))

    def active(self) -> bool:
        return self.rate > 0


class FixedGrowth(ArrivalProcess):
    """Exactly ``per_epoch`` arrivals every epoch."""

    def __init__(self, per_epoch: int = 1, **kwargs: Any) -> None:
        if per_epoch < 0:
            raise InvalidParameter(
                f"per_epoch must be >= 0, got {per_epoch}"
            )
        super().__init__(**kwargs)
        self.per_epoch = per_epoch

    def arrivals(self, rng: np.random.Generator) -> int:  # noqa: ARG002
        return self.per_epoch

    def active(self) -> bool:
        return self.per_epoch > 0


@register_growth("poisson")
def build_poisson_growth(
    rate: float = 1.0,
    algorithm: str = "greedy",
    params: Optional[Mapping[str, Any]] = None,
    model: Optional[Mapping[str, Any]] = None,
) -> PoissonGrowth:
    """The ``"poisson"`` growth plugin."""
    return PoissonGrowth(rate=rate, algorithm=algorithm, params=params, model=model)


@register_growth("fixed")
def build_fixed_growth(
    per_epoch: int = 1,
    algorithm: str = "greedy",
    params: Optional[Mapping[str, Any]] = None,
    model: Optional[Mapping[str, Any]] = None,
) -> FixedGrowth:
    """The ``"fixed"`` growth plugin."""
    return FixedGrowth(
        per_epoch=per_epoch, algorithm=algorithm, params=params, model=model
    )
