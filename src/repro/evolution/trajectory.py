"""Trajectory records of an evolution run, plus topology classification.

Every epoch of :class:`~repro.evolution.engine.EvolutionEngine` appends
one :class:`EpochRecord`; the finished run is a :class:`Trajectory` —
a plain-JSON-serialisable time series of topology statistics, welfare,
distance-to-NE, and the revenue Gini coefficient, with a flat ``row()``
form for sweep tables. :func:`classify_topology` names the Section IV
shapes (star / path / circle / complete) so emergence tables can ask
"which topology did the dynamics settle on?" without inspecting graphs.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, fields
from typing import Any, Dict, Iterable, Mapping, Optional, Tuple

from ..network.graph import ChannelGraph

__all__ = ["EpochRecord", "Trajectory", "classify_topology", "gini"]

#: Version stamp of the ``Trajectory.to_dict`` document layout.
TRAJECTORY_SCHEMA_VERSION = 1


def gini(values: Iterable[float]) -> float:
    """Gini coefficient of non-negative ``values`` (0 when degenerate).

    Computed from the sorted-values identity
    ``G = Σ_i (2i - n - 1) x_(i) / (n Σ x)``; an empty or all-zero
    population has no inequality to measure and returns 0.
    """
    ordered = sorted(float(v) for v in values)
    n = len(ordered)
    total = sum(ordered)
    if n == 0 or total <= 0:
        return 0.0
    weighted = sum((2 * (i + 1) - n - 1) * x for i, x in enumerate(ordered))
    return weighted / (n * total)


def classify_topology(graph: ChannelGraph) -> str:
    """Name the shape of ``graph``: the Section IV classes or ``"other"``.

    Classification uses the collapsed simple graph (parallel channels
    count once), so a star stays a star even if a pair holds two
    channels. Disconnected graphs are ``"other"`` except the trivial
    single-node/empty cases (``"degenerate"``).
    """
    n = len(graph)
    if n <= 1:
        return "degenerate"
    degrees = sorted(len(graph.neighbors(node)) for node in graph.nodes)
    edges = sum(degrees) // 2
    if degrees[0] == 0:
        return "other"
    if n >= 2 and degrees == [1] * (n - 1) + [n - 1]:
        # n == 2 also lands here (a single edge is a 1-leaf star).
        return "star"
    if degrees == [n - 1] * n:
        return "complete"
    if edges == n - 1 and degrees[:2] == [1, 1] and degrees[2:] == [2] * (n - 2):
        return "path" if _connected(graph) else "other"
    if edges == n and degrees == [2] * n:
        return "circle" if _connected(graph) else "other"
    return "other"


def _connected(graph: ChannelGraph) -> bool:
    nodes = graph.nodes
    if not nodes:
        return True
    seen = {nodes[0]}
    frontier = [nodes[0]]
    while frontier:
        node = frontier.pop()
        for neighbor in graph.neighbors(node):
            if neighbor not in seen:
                seen.add(neighbor)
                frontier.append(neighbor)
    return len(seen) == len(nodes)


@dataclass(frozen=True)
class EpochRecord:
    """Everything one evolution epoch produced, in plain JSON types.

    ``move_log`` holds one document per applied best-response move:
    ``{"node": ..., "gain": ..., "add": [...], "remove": [...]}``.
    ``max_gain`` is the largest improving gain *seen* during the sweep
    (each node evaluated against the graph state it deviated from) — the
    epoch's empirical distance-to-NE; 0 means no sampled node could
    improve.
    """

    epoch: int
    nodes: int
    channels: int
    arrivals: int
    departures: int
    closure_costs: float
    attempted: int
    succeeded: int
    success_rate: float
    total_revenue: float
    revenue_gini: float
    moves: int
    max_gain: float
    welfare: float
    topology: str
    move_log: Tuple[Dict[str, Any], ...] = ()

    def to_dict(self) -> Dict[str, Any]:
        doc = {
            "epoch": self.epoch,
            "nodes": self.nodes,
            "channels": self.channels,
            "arrivals": self.arrivals,
            "departures": self.departures,
            "closure_costs": self.closure_costs,
            "attempted": self.attempted,
            "succeeded": self.succeeded,
            "success_rate": self.success_rate,
            "total_revenue": self.total_revenue,
            "revenue_gini": self.revenue_gini,
            "moves": self.moves,
            "max_gain": self.max_gain,
            "welfare": self.welfare,
            "topology": self.topology,
            "move_log": [dict(move) for move in self.move_log],
        }
        return doc

    @classmethod
    def from_dict(cls, document: Mapping[str, Any]) -> "EpochRecord":
        """Rebuild one epoch record from a :meth:`to_dict` document."""
        if not isinstance(document, Mapping):
            raise ValueError(
                f"EpochRecord document must be a mapping, "
                f"got {type(document).__name__}"
            )
        known = {f.name for f in fields(cls)}
        unknown = set(document) - known
        if unknown:
            raise ValueError(f"unknown EpochRecord fields: {sorted(unknown)}")
        kwargs = dict(document)
        kwargs["move_log"] = tuple(
            dict(move) for move in kwargs.get("move_log", ())
        )
        return cls(**kwargs)


@dataclass(frozen=True)
class Trajectory:
    """The full record of one evolution run.

    Attributes:
        records: one :class:`EpochRecord` per executed epoch.
        converged: whether the run stopped because ``patience``
            consecutive epochs were quiet (no arrival, departure, or
            improving move) *and* no stochastic growth/churn process
            remained active, rather than by exhausting ``epochs``.
            Runs under live arrivals/churn always execute every epoch
            and report ``False`` — a randomly quiet stretch is not a
            rest point.
        epochs_run: number of executed epochs (== ``len(records)``).
        seed: the seed the run used.
        final_topology: :func:`classify_topology` of the final graph.
        nash_stable: full :func:`~repro.equilibrium.nash.check_nash`
            verdict on the final graph under the spec's analytic model;
            ``None`` when the spec disabled the final check.
        final_max_gain: the final check's residual best gain (``None``
            when disabled).
    """

    records: Tuple[EpochRecord, ...]
    converged: bool
    epochs_run: int
    seed: int
    final_topology: str
    nash_stable: Optional[bool] = None
    final_max_gain: Optional[float] = None
    totals: Dict[str, float] = field(default_factory=dict)

    def final(self) -> EpochRecord:
        if not self.records:
            raise ValueError("trajectory has no epochs")
        return self.records[-1]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema_version": TRAJECTORY_SCHEMA_VERSION,
            "converged": self.converged,
            "epochs_run": self.epochs_run,
            "seed": self.seed,
            "final_topology": self.final_topology,
            "nash_stable": self.nash_stable,
            "final_max_gain": self.final_max_gain,
            "totals": dict(self.totals),
            "epochs": [record.to_dict() for record in self.records],
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, document: Mapping[str, Any]) -> "Trajectory":
        """Rebuild a trajectory from a :meth:`to_dict` document."""
        if not isinstance(document, Mapping):
            raise ValueError(
                f"Trajectory document must be a mapping, "
                f"got {type(document).__name__}"
            )
        version = document.get("schema_version", TRAJECTORY_SCHEMA_VERSION)
        if version != TRAJECTORY_SCHEMA_VERSION:
            raise ValueError(
                f"unsupported Trajectory schema_version {version!r}"
            )
        known = {
            "schema_version", "converged", "epochs_run", "seed",
            "final_topology", "nash_stable", "final_max_gain", "totals",
            "epochs",
        }
        unknown = set(document) - known
        if unknown:
            raise ValueError(f"unknown Trajectory fields: {sorted(unknown)}")
        return cls(
            records=tuple(
                EpochRecord.from_dict(record)
                for record in document.get("epochs", [])
            ),
            converged=document["converged"],
            epochs_run=document["epochs_run"],
            seed=document["seed"],
            final_topology=document["final_topology"],
            nash_stable=document.get("nash_stable"),
            final_max_gain=document.get("final_max_gain"),
            totals=dict(document.get("totals", {})),
        )

    @classmethod
    def from_json(cls, text: str) -> "Trajectory":
        return cls.from_dict(json.loads(text))

    def row(self) -> Dict[str, Any]:
        """Flat headline columns for sweep tables (scalars only)."""
        last = self.final()
        row: Dict[str, Any] = {
            "epochs_run": self.epochs_run,
            "converged": self.converged,
            "final_nodes": last.nodes,
            "final_channels": last.channels,
            "final_topology": self.final_topology,
            "final_success_rate": last.success_rate,
            "final_welfare": last.welfare,
            "final_revenue_gini": last.revenue_gini,
            "max_gain": last.max_gain,
            "nash_stable": self.nash_stable,
            "final_max_gain": self.final_max_gain,
        }
        row.update(self.totals)
        return row
