"""The AST-visitor rule engine behind ``python -m repro lint``.

One parse per file, one tree walk per file: the walker dispatches every
node to each registered rule's matching ``visit_<NodeType>`` handlers,
while centrally tracking the context rules need (import aliases, whether
we are inside a function or class body). Rules stay tiny — a handler, a
``report()`` call — and register by id into :data:`~repro.devtools.rules.RULES`,
mirroring the scenario plugin registries.

Suppressions are per-line, per-rule comments, matching the repo-wide
idiom for sanctioned exceptions::

    drawn = entropy_draw()  # reprolint: disable=RPR001
    stamp = time.time()     # reprolint: disable=RPR005,RPR001

Grandfathered findings live in a committed baseline file (see
:mod:`repro.devtools.baseline`); everything else fails the lint.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    TYPE_CHECKING,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    Type,
)

from .findings import Finding

if TYPE_CHECKING:  # pragma: no cover - type hints only
    from .baseline import Baseline

__all__ = ["FileContext", "LintResult", "Rule", "lint_file", "lint_paths"]

_SUPPRESS_RE = re.compile(r"#\s*reprolint:\s*disable=([A-Z0-9,\s]+)")

#: Directories never descended into during path discovery.
_SKIP_DIRS = {"__pycache__", ".git", ".hypothesis", "htmlcov", "node_modules"}


def _suppressed_on(line: str) -> frozenset:
    """Rule ids disabled by a ``# reprolint: disable=...`` comment."""
    match = _SUPPRESS_RE.search(line)
    if not match:
        return frozenset()
    return frozenset(
        token.strip() for token in match.group(1).split(",") if token.strip()
    )


class FileContext:
    """Everything one file's rules share during the walk.

    Attributes:
        path: posix-style path (relative to the invocation cwd when
            possible) — rules use it for location-scoped exemptions.
        lines: raw source lines (1-based access via ``source_line``).
        imports: binding name -> fully dotted origin, built from the
            file's ``import``/``from ... import`` statements
            (``np`` -> ``numpy``, ``default_rng`` ->
            ``numpy.random.default_rng``).
        function_depth / class_depth: scope counters maintained by the
            walker (decorators and default expressions evaluate in the
            *enclosing* scope and are visited there).
    """

    def __init__(self, path: str, source: str, tree: ast.Module) -> None:
        self.path = path
        self.lines = source.splitlines()
        self.tree = tree
        self.imports = _collect_imports(tree)
        self.function_depth = 0
        self.class_depth = 0
        self.findings: List[Finding] = []
        self.suppressed: List[Finding] = []

    def source_line(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""

    def add(self, rule: str, node: ast.AST, message: str) -> None:
        line = getattr(node, "lineno", 1)
        raw = self.source_line(line)
        finding = Finding(
            rule=rule,
            path=self.path,
            line=line,
            col=getattr(node, "col_offset", 0),
            message=message,
            content=raw.strip(),
        )
        if rule in _suppressed_on(raw):
            self.suppressed.append(finding)
        else:
            self.findings.append(finding)

    # -- dotted-name resolution ----------------------------------------------

    def resolve(self, node: ast.AST) -> Optional[str]:
        """Resolve ``node`` to a fully dotted name via the import map.

        ``np.random.rand`` -> ``"numpy.random.rand"`` under
        ``import numpy as np``; names with no import binding resolve to
        ``None`` (locals never alias modules here).
        """
        if isinstance(node, ast.Name):
            return self.imports.get(node.id)
        if isinstance(node, ast.Attribute):
            base = self.resolve(node.value)
            if base is None:
                return None
            return f"{base}.{node.attr}"
        return None


def _collect_imports(tree: ast.Module) -> Dict[str, str]:
    imports: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    imports[alias.asname] = alias.name
                else:
                    root = alias.name.split(".", 1)[0]
                    imports[root] = root
        elif isinstance(node, ast.ImportFrom):
            module = ("." * node.level) + (node.module or "")
            for alias in node.names:
                binding = alias.asname or alias.name
                imports[binding] = f"{module}.{alias.name}" if module else alias.name
    return imports


class Rule:
    """Base class of all lint rules.

    Subclasses set the class attributes, implement any number of
    ``visit_<NodeType>`` handlers (called once per matching node during
    the single tree walk), and call :meth:`report`. One instance is
    created per linted file.
    """

    rule_id: str = "RPR000"
    title: str = ""
    description: str = ""

    def __init__(self, ctx: FileContext) -> None:
        self.ctx = ctx

    def report(self, node: ast.AST, message: str) -> None:
        self.ctx.add(self.rule_id, node, message)

    def finish(self) -> None:
        """Called after the walk — for rules that aggregate."""


class _Walker:
    """Single-pass dispatcher with correct scope accounting.

    Decorators, argument defaults, annotations, and base classes are
    visited in the *enclosing* scope before the function/class scope
    opens — so a module-level ``@register_x("key")`` decorator is
    correctly seen at module scope even though the AST nests it inside
    the ``FunctionDef``.
    """

    def __init__(self, ctx: FileContext, rules: Sequence[Rule]) -> None:
        self.ctx = ctx
        self.handlers: Dict[str, List] = {}
        for rule in rules:
            for name in dir(type(rule)):
                if name.startswith("visit_"):
                    self.handlers.setdefault(name[6:], []).append(
                        getattr(rule, name)
                    )

    def walk(self, node: ast.AST) -> None:
        for handler in self.handlers.get(type(node).__name__, ()):
            handler(node)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            for deco in node.decorator_list:
                self.walk(deco)
            self.walk(node.args)
            if node.returns is not None:
                self.walk(node.returns)
            self.ctx.function_depth += 1
            for stmt in node.body:
                self.walk(stmt)
            self.ctx.function_depth -= 1
        elif isinstance(node, ast.Lambda):
            self.walk(node.args)
            self.ctx.function_depth += 1
            self.walk(node.body)
            self.ctx.function_depth -= 1
        elif isinstance(node, ast.ClassDef):
            for deco in node.decorator_list:
                self.walk(deco)
            for base in node.bases:
                self.walk(base)
            for keyword in node.keywords:
                self.walk(keyword)
            self.ctx.class_depth += 1
            for stmt in node.body:
                self.walk(stmt)
            self.ctx.class_depth -= 1
        else:
            for child in ast.iter_child_nodes(node):
                self.walk(child)


@dataclass
class LintResult:
    """Outcome of one lint invocation."""

    findings: List[Finding] = field(default_factory=list)
    suppressed: List[Finding] = field(default_factory=list)
    baselined: List[Finding] = field(default_factory=list)
    files: int = 0

    @property
    def clean(self) -> bool:
        return not self.findings


def _relative_posix(path: Path) -> str:
    try:
        rel = path.resolve().relative_to(Path.cwd().resolve())
        return rel.as_posix()
    except ValueError:
        return path.as_posix()


def iter_python_files(paths: Iterable[str]) -> List[Path]:
    """Expand ``paths`` (files or directories) to sorted ``.py`` files."""
    out = []
    seen = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            candidates = sorted(
                p for p in path.rglob("*.py")
                if not (set(p.parts) & _SKIP_DIRS)
            )
        else:
            candidates = [path]
        for candidate in candidates:
            key = candidate.resolve()
            if key not in seen:
                seen.add(key)
                out.append(candidate)
    return out


def lint_file(
    path: Path, rule_classes: Sequence[Type[Rule]]
) -> Tuple[List[Finding], List[Finding]]:
    """Lint one file; returns ``(findings, suppressed)``."""
    rel = _relative_posix(path)
    try:
        source = path.read_text(encoding="utf-8")
    except OSError as exc:
        finding = Finding(
            rule="RPR000", path=rel, line=1, col=0,
            message=f"cannot read file: {exc}",
        )
        return [finding], []
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        finding = Finding(
            rule="RPR000", path=rel, line=exc.lineno or 1,
            col=(exc.offset or 1) - 1,
            message=f"syntax error: {exc.msg}",
        )
        return [finding], []
    ctx = FileContext(rel, source, tree)
    rules = [cls(ctx) for cls in rule_classes]
    _Walker(ctx, rules).walk(tree)
    for rule in rules:
        rule.finish()
    return ctx.findings, ctx.suppressed


def lint_paths(
    paths: Iterable[str],
    rule_classes: Optional[Sequence[Type[Rule]]] = None,
    baseline: Optional["Baseline"] = None,
) -> LintResult:
    """Lint every python file under ``paths``.

    Args:
        paths: files and/or directories.
        rule_classes: rules to run; defaults to every registered rule
            (sorted by rule id).
        baseline: grandfathered findings to subtract (see
            :class:`~repro.devtools.baseline.Baseline`).
    """
    if rule_classes is None:
        from .rules import RULES

        rule_classes = [RULES.get(rule_id) for rule_id in RULES]
    result = LintResult()
    for path in iter_python_files(paths):
        findings, suppressed = lint_file(path, rule_classes)
        result.files += 1
        result.suppressed.extend(suppressed)
        result.findings.extend(findings)
    result.findings.sort(key=Finding.sort_key)
    result.suppressed.sort(key=Finding.sort_key)
    if baseline is not None:
        result.findings, result.baselined = baseline.split(result.findings)
    return result
