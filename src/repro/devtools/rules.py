"""The reprolint rule catalogue: RPR001–RPR009.

Each rule encodes one structural invariant the reproduction's headline
claims rest on (bit-identical backend parity, byte-identical CLI runs,
serial==process sweep equality, content-addressable runs):

========  ==============================================================
RPR001    no unseeded / global-state randomness in library code
RPR002    ``GraphView`` CSR arrays are written only by ``network/views.py``
RPR003    spec/report/trajectory dataclasses are frozen and JSON-typed
RPR004    no calls to deprecated APIs (``register_deprecation`` registry)
RPR005    no calendar-clock reads in library code (benchmarks exempt)
RPR006    plugin registrations are import-time, string-literal-keyed
RPR007    no mutable default arguments or module-level mutable singletons
RPR008    store writes are atomic (service/store.py only) and artifact
          ``to_dict`` documents carry a ``schema_version``
RPR009    timer reads (monotonic/perf_counter) go through
          ``repro.obs.clock`` (benchmarks and obs/clock.py exempt)
========  ==============================================================

Rules register into :data:`RULES` — the same string-keyed
:class:`~repro.scenarios.registry.Registry` idiom the scenario plugins
use — so a new rule is a subclass plus a decorator::

    @register_rule("RPR010")
    class NoPrintRule(Rule):
        rule_id = "RPR010"
        ...

The deprecation list of RPR004 is itself a tiny registry: call
:func:`register_deprecation` (at import time, from ``conftest`` or a
plugin) to extend it.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Optional

from ..scenarios.registry import Registry
from .engine import Rule

__all__ = [
    "RULES",
    "register_rule",
    "register_deprecation",
    "UnseededRandomnessRule",
    "GraphViewWriteRule",
    "FrozenArtifactRule",
    "DeprecatedCallRule",
    "WallClockRule",
    "RegistrationDisciplineRule",
    "MutableStateRule",
    "StoreHygieneRule",
    "ClockDisciplineRule",
]

#: Lint rules, keyed by rule id. Iteration order is sorted, so the
#: engine's default rule set is stable.
RULES = Registry("lint-rule")
register_rule = RULES.register


# ---------------------------------------------------------------------------
# RPR001 — randomness must flow from derived seeds
# ---------------------------------------------------------------------------

#: numpy.random attributes that are seedable constructors/classes, not
#: global-state entry points.
_SAFE_NP_RANDOM = frozenset({
    "default_rng", "Generator", "BitGenerator", "SeedSequence",
    "PCG64", "PCG64DXSM", "Philox", "SFC64", "MT19937",
})


@register_rule("RPR001")
class UnseededRandomnessRule(Rule):
    rule_id = "RPR001"
    title = "unseeded-randomness"
    description = (
        "All randomness must flow from explicit, derived seeds: no stdlib "
        "`random.*` module calls, no `np.random.*` global-state calls, no "
        "`default_rng()` / `SeedSequence()` without an argument."
    )

    def visit_Call(self, node: ast.Call) -> None:
        full = self.ctx.resolve(node.func)
        if full is None:
            return
        if full.startswith("random.") and full.count(".") == 1:
            self.report(
                node,
                f"stdlib `{full}` uses hidden global RNG state; derive a "
                "`np.random.Generator` from the scenario seed instead",
            )
            return
        if not full.startswith("numpy.random."):
            return
        attr = full[len("numpy.random."):]
        if "." in attr:
            return
        has_args = bool(node.args or node.keywords)
        if attr == "default_rng":
            if not has_args:
                self.report(
                    node,
                    "`default_rng()` without a seed is entropy-based and "
                    "unreplayable; pass a seed derived via "
                    "`repro.determinism.resolve_seed` / `derive_seed`",
                )
        elif attr == "SeedSequence":
            if not has_args:
                self.report(
                    node,
                    "`SeedSequence()` with no entropy argument draws OS "
                    "entropy; use `repro.determinism.resolve_seed` so the "
                    "drawn seed is logged and replayable",
                )
        elif attr not in _SAFE_NP_RANDOM:
            self.report(
                node,
                f"`np.random.{attr}` call uses numpy's global RNG state; "
                "use a seeded `np.random.Generator`",
            )


# ---------------------------------------------------------------------------
# RPR002 — GraphView arrays are immutable outside network/views.py
# ---------------------------------------------------------------------------

#: The CSR/parallel arrays of :class:`repro.network.views.GraphView`.
_VIEW_FIELDS = frozenset({
    "indptr", "indices", "edge_ids", "balances", "capacities",
    "fee_base", "fee_rate",
})
#: ndarray methods that mutate in place.
_NDARRAY_MUTATORS = frozenset({
    "fill", "sort", "partition", "put", "resize", "setfield",
})
_VIEWS_MODULE = "network/views.py"


@register_rule("RPR002")
class GraphViewWriteRule(Rule):
    rule_id = "RPR002"
    title = "graphview-write"
    description = (
        "GraphView CSR arrays (indptr/indices/edge_ids/balances/...) are "
        "shared, version-cached snapshots: any write outside "
        "network/views.py corrupts every consumer. Copy first "
        "(`view.balances.copy()`)."
    )

    def _exempt(self) -> bool:
        return self.ctx.path.endswith(_VIEWS_MODULE)

    @staticmethod
    def _foreign_field(node: ast.AST) -> Optional[str]:
        """``X.balances`` where ``X`` is not ``self`` -> ``"balances"``."""
        if (
            isinstance(node, ast.Attribute)
            and node.attr in _VIEW_FIELDS
            and not (
                isinstance(node.value, ast.Name) and node.value.id == "self"
            )
        ):
            return node.attr
        return None

    def _check_store(self, target: ast.AST) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._check_store(element)
            return
        if isinstance(target, ast.Subscript):
            f = self._foreign_field(target.value)
            if f is not None:
                self.report(
                    target,
                    f"write into GraphView array `{f}` outside "
                    "network/views.py; views are immutable snapshots — "
                    "copy the array first",
                )
            return
        f = self._foreign_field(target)
        if f is not None:
            self.report(
                target,
                f"rebinding GraphView field `{f}` outside network/views.py",
            )

    def visit_Assign(self, node: ast.Assign) -> None:
        if self._exempt():
            return
        for target in node.targets:
            self._check_store(target)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        if not self._exempt():
            self._check_store(node.target)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if not self._exempt() and node.value is not None:
            self._check_store(node.target)

    def visit_Call(self, node: ast.Call) -> None:
        if self._exempt():
            return
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr in _NDARRAY_MUTATORS
        ):
            f = self._foreign_field(func.value)
            if f is not None:
                self.report(
                    node,
                    f"in-place `{func.attr}()` on GraphView array `{f}` "
                    "outside network/views.py",
                )


# ---------------------------------------------------------------------------
# RPR003 — result artifacts are frozen and JSON-typed
# ---------------------------------------------------------------------------

_ARTIFACT_SUFFIXES = ("Spec", "Report", "Record", "Trajectory")
_ARTIFACT_NAMES = frozenset({"Scenario"})
#: Annotation identifiers that provably do not survive a JSON round trip.
_NON_JSON_TYPES = frozenset({
    "ndarray", "Callable", "ChannelGraph", "GraphView", "Generator",
    "bytes", "bytearray", "complex", "set", "Set", "frozenset",
    "FrozenSet", "deque", "Deque", "defaultdict", "DefaultDict",
})
_IDENT_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")


@register_rule("RPR003")
class FrozenArtifactRule(Rule):
    rule_id = "RPR003"
    title = "frozen-artifact"
    description = (
        "Dataclasses named *Spec/*Report/*Record/*Trajectory (and "
        "Scenario) are result artifacts: they must be "
        "@dataclass(frozen=True) and must not declare fields of "
        "known non-JSON types (ndarray, Callable, ChannelGraph, sets, ...)."
    )

    def _dataclass_decorator(self, node: ast.ClassDef) -> Optional[ast.AST]:
        for deco in node.decorator_list:
            target = deco.func if isinstance(deco, ast.Call) else deco
            name = None
            if isinstance(target, ast.Name):
                name = target.id
            elif isinstance(target, ast.Attribute):
                name = target.attr
            if name == "dataclass":
                return deco
        return None

    @staticmethod
    def _is_frozen(deco: ast.AST) -> bool:
        if not isinstance(deco, ast.Call):
            return False
        for keyword in deco.keywords:
            if keyword.arg == "frozen":
                value = keyword.value
                return isinstance(value, ast.Constant) and value.value is True
        return False

    @staticmethod
    def _annotation_idents(annotation: ast.AST) -> set:
        idents = set()
        for sub in ast.walk(annotation):
            if isinstance(sub, ast.Name):
                idents.add(sub.id)
            elif isinstance(sub, ast.Attribute):
                idents.add(sub.attr)
            elif isinstance(sub, ast.Constant) and isinstance(sub.value, str):
                idents.update(_IDENT_RE.findall(sub.value))
        return idents

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        name = node.name
        if not (
            name.endswith(_ARTIFACT_SUFFIXES) or name in _ARTIFACT_NAMES
        ):
            return
        deco = self._dataclass_decorator(node)
        if deco is None:
            return
        if not self._is_frozen(deco):
            self.report(
                node,
                f"artifact dataclass `{name}` must be "
                "@dataclass(frozen=True): reports and specs are shared "
                "across process boundaries and hashed for addressing",
            )
        for stmt in node.body:
            if not isinstance(stmt, ast.AnnAssign):
                continue
            idents = self._annotation_idents(stmt.annotation)
            if "ClassVar" in idents:
                continue
            bad = sorted(idents & _NON_JSON_TYPES)
            if bad:
                field_name = (
                    stmt.target.id
                    if isinstance(stmt.target, ast.Name) else "<field>"
                )
                self.report(
                    stmt,
                    f"artifact dataclass `{name}` field `{field_name}` has "
                    f"non-JSON-serialisable annotation ({', '.join(bad)}); "
                    "artifacts must round-trip through plain JSON types",
                )


# ---------------------------------------------------------------------------
# RPR004 — deprecated API calls
# ---------------------------------------------------------------------------

#: Deprecated call names -> migration advice. Import-time extensible via
#: :func:`register_deprecation`; mutated in place, never reassigned — the
#: lint-time analogue of the plugin registries. Empty since the
#: ``to_undirected`` / ``to_directed`` deprecation cycle completed (the
#: wrappers were removed outright); the next deprecation starts here.
_DEPRECATED_CALLS: Dict[str, str] = {}


def register_deprecation(name: str, advice: str) -> None:
    """Extend RPR004's deprecation list (call at import time)."""
    _DEPRECATED_CALLS[name] = advice


@register_rule("RPR004")
class DeprecatedCallRule(Rule):
    rule_id = "RPR004"
    title = "deprecated-call"
    description = (
        "Calls to APIs on the repo deprecation list (extensible via "
        "register_deprecation; empty between deprecation cycles). "
        "Deprecated wrappers warn at runtime; library code must not "
        "trip its own deprecations."
    )

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        name = None
        if isinstance(func, ast.Attribute):
            name = func.attr
        elif isinstance(func, ast.Name):
            name = func.id
        if name in _DEPRECATED_CALLS:
            self.report(
                node,
                f"call to deprecated `{name}()`; {_DEPRECATED_CALLS[name]}",
            )


# ---------------------------------------------------------------------------
# RPR005 — wall clock in library code
# ---------------------------------------------------------------------------

#: Calendar clocks — absolute dates/times; RPR009 owns the timer family.
_WALL_CLOCK = frozenset({
    "time.time", "time.time_ns",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
})
_WALL_CLOCK_EXEMPT_PREFIXES = ("benchmarks/",)


@register_rule("RPR005")
class WallClockRule(Rule):
    rule_id = "RPR005"
    title = "wall-clock"
    description = (
        "Library code must not read the calendar clock (time.time, "
        "datetime.now, ...): simulated time comes from the event queue, "
        "and timing belongs in benchmarks/ (exempt). Elapsed-time "
        "measurement goes through repro.obs.clock (RPR009)."
    )

    def visit_Call(self, node: ast.Call) -> None:
        if self.ctx.path.startswith(_WALL_CLOCK_EXEMPT_PREFIXES):
            return
        full = self.ctx.resolve(node.func)
        if full in _WALL_CLOCK:
            self.report(
                node,
                f"wall-clock call `{full}` in library code breaks run "
                "replayability; use simulation time, or move timing into "
                "benchmarks/",
            )


# ---------------------------------------------------------------------------
# RPR006 — import-time, literal-keyed plugin registration
# ---------------------------------------------------------------------------

_REGISTRAR_RE = re.compile(r"^register_[a-z0-9_]+$")
#: register_* callables that are *not* plugin registries (event wiring).
_REGISTRAR_EXEMPT = frozenset({"register_handler"})


@register_rule("RPR006")
class RegistrationDisciplineRule(Rule):
    rule_id = "RPR006"
    title = "registration-discipline"
    description = (
        "Plugin registrations (`register_topology(...)`, "
        "`SOMETHING.register(...)`) must happen at import time with "
        "string-literal keys, so registry contents are identical in "
        "every process of a sweep and keys are grep-able."
    )

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        name = None
        if isinstance(func, ast.Name):
            if (
                _REGISTRAR_RE.match(func.id)
                and func.id not in _REGISTRAR_EXEMPT
            ):
                name = func.id
        elif isinstance(func, ast.Attribute) and func.attr == "register":
            base = func.value
            if isinstance(base, ast.Name) and base.id.isupper():
                name = f"{base.id}.register"
        if name is None:
            return
        if self.ctx.function_depth > 0:
            self.report(
                node,
                f"`{name}(...)` inside a function: registrations must run "
                "at import time, or process-parallel sweeps see diverging "
                "registries",
            )
        for arg in node.args:
            if not (
                isinstance(arg, ast.Constant) and isinstance(arg.value, str)
            ):
                self.report(
                    arg,
                    f"`{name}(...)` key is not a string literal; registry "
                    "keys must be import-time literals (grep-able, "
                    "spec-hash stable)",
                )


# ---------------------------------------------------------------------------
# RPR007 — mutable defaults and module-level mutable singletons
# ---------------------------------------------------------------------------

_MUTABLE_FACTORIES = frozenset({
    "dict", "list", "set", "defaultdict", "deque", "OrderedDict", "Counter",
})


def _mutable_default(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.List):
        return "[]" if not node.elts else "[...]"
    if isinstance(node, ast.Dict):
        return "{}" if not node.keys else "{...}"
    if isinstance(node, ast.Set):
        return "{...}"
    if isinstance(node, ast.Call):
        name = None
        if isinstance(node.func, ast.Name):
            name = node.func.id
        elif isinstance(node.func, ast.Attribute):
            name = node.func.attr
        if name in _MUTABLE_FACTORIES:
            return f"{name}(...)"
    return None


@register_rule("RPR007")
class MutableStateRule(Rule):
    rule_id = "RPR007"
    title = "mutable-shared-state"
    description = (
        "No mutable default arguments (shared across calls) and no "
        "module-level empty-container singletons (shared across runs, "
        "diverge across sweep processes). Use None-defaults and "
        "instance/registry state instead."
    )

    def _check_defaults(self, args: ast.arguments) -> None:
        for default in list(args.defaults) + [
            d for d in args.kw_defaults if d is not None
        ]:
            shape = _mutable_default(default)
            if shape is not None:
                self.report(
                    default,
                    f"mutable default argument `{shape}` is shared across "
                    "calls; default to None and create per call",
                )

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_defaults(node.args)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_defaults(node.args)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._check_defaults(node.args)

    def visit_Assign(self, node: ast.Assign) -> None:
        if self.ctx.function_depth or self.ctx.class_depth:
            return
        value = node.value
        empty = (
            (isinstance(value, ast.List) and not value.elts)
            or (isinstance(value, ast.Dict) and not value.keys)
            or (
                isinstance(value, ast.Call)
                and isinstance(value.func, ast.Name)
                and value.func.id in ("dict", "list", "set")
                and not value.args and not value.keywords
            )
        )
        if not empty:
            return
        for target in node.targets:
            if isinstance(target, ast.Name) and not (
                target.id.startswith("__") and target.id.endswith("__")
            ):
                self.report(
                    node,
                    f"module-level mutable singleton `{target.id}`: "
                    "accumulator state at module scope diverges across "
                    "sweep worker processes; move it into a class or "
                    "registry object",
                )


# ---------------------------------------------------------------------------
# RPR008 — store-write atomicity and versioned artifact serialisation
# ---------------------------------------------------------------------------

#: The one module allowed to write into a result store directly — its
#: tmp+rename dance is what makes concurrent store access crash-safe.
_STORE_MODULE = "service/store.py"
#: Artifact classes whose ``to_dict`` must stamp a schema version.
_VERSIONED_SUFFIXES = ("Report", "Trajectory", "Result")
_VERSIONED_NAMES = frozenset({"Scenario"})
_WRITE_MODE_RE = re.compile(r"[wax+]")


def _mentions_store(node: ast.AST) -> bool:
    """Whether an expression's identifiers smell like a store path."""
    for sub in ast.walk(node):
        name = None
        if isinstance(sub, ast.Name):
            name = sub.id
        elif isinstance(sub, ast.Attribute):
            name = sub.attr
        elif isinstance(sub, ast.Constant) and isinstance(sub.value, str):
            name = sub.value
        if name is not None and "store" in name.lower():
            return True
    return False


@register_rule("RPR008")
class StoreHygieneRule(Rule):
    rule_id = "RPR008"
    title = "store-hygiene"
    description = (
        "Result-store entries are written only by service/store.py "
        "(atomic tmp+rename; a direct `open(store_path, 'w')` elsewhere "
        "can expose half-written JSON to concurrent readers), and "
        "artifact `to_dict` documents (Scenario, *Report, *Trajectory, "
        "*Result) must stamp a `schema_version` so stored payloads "
        "invalidate cleanly when their layout changes."
    )

    def _exempt(self) -> bool:
        return self.ctx.path.endswith(_STORE_MODULE)

    def visit_Call(self, node: ast.Call) -> None:
        if self._exempt():
            return
        func = node.func
        # open(path_mentioning_store, "w"/"a"/"x"/"+")
        if isinstance(func, ast.Name) and func.id == "open" and node.args:
            mode = None
            if len(node.args) > 1:
                mode = node.args[1]
            for keyword in node.keywords:
                if keyword.arg == "mode":
                    mode = keyword.value
            if (
                isinstance(mode, ast.Constant)
                and isinstance(mode.value, str)
                and _WRITE_MODE_RE.search(mode.value)
                and _mentions_store(node.args[0])
            ):
                self.report(
                    node,
                    "non-atomic write into a store directory: concurrent "
                    "readers can observe the half-written entry; go "
                    "through `ResultStore.put` (atomic tmp+rename) instead",
                )
            return
        # store_path.write_text(...) / .write_bytes(...)
        if (
            isinstance(func, ast.Attribute)
            and func.attr in ("write_text", "write_bytes")
            and _mentions_store(func.value)
        ):
            self.report(
                node,
                f"`{func.attr}()` on a store path bypasses the store's "
                "atomic tmp+rename protocol; use `ResultStore.put`",
            )

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        name = node.name
        if not (
            name.endswith(_VERSIONED_SUFFIXES) or name in _VERSIONED_NAMES
        ):
            return
        for stmt in node.body:
            if (
                isinstance(stmt, ast.FunctionDef)
                and stmt.name == "to_dict"
                and not self._stamps_version(stmt)
            ):
                self.report(
                    stmt,
                    f"`{name}.to_dict` emits an unversioned document; "
                    "include a `schema_version` key so stored artifacts "
                    "invalidate cleanly when the layout changes",
                )

    @staticmethod
    def _stamps_version(func: ast.FunctionDef) -> bool:
        for sub in ast.walk(func):
            if (
                isinstance(sub, ast.Constant)
                and sub.value == "schema_version"
            ):
                return True
        return False


# ---------------------------------------------------------------------------
# RPR009 — timer reads go through repro.obs.clock
# ---------------------------------------------------------------------------

#: Timer-family clocks (elapsed time, no calendar meaning) — disjoint
#: from RPR005's calendar set, so each fixture trips exactly one rule.
_TIMER_CLOCK = frozenset({
    "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns",
})
_TIMER_EXEMPT_PREFIXES = ("benchmarks/",)
_TIMER_HOME_SUFFIX = "obs/clock.py"


@register_rule("RPR009")
class ClockDisciplineRule(Rule):
    rule_id = "RPR009"
    title = "clock-discipline"
    description = (
        "Elapsed-time measurement goes through `repro.obs.clock` "
        "(the one injectable, fake-able timer source): direct "
        "`time.monotonic`/`time.perf_counter` calls outside obs/clock.py "
        "and benchmarks/ fragment the timing discipline and dodge "
        "FakeClock-based tests."
    )

    def visit_Call(self, node: ast.Call) -> None:
        path = self.ctx.path
        if path.startswith(_TIMER_EXEMPT_PREFIXES):
            return
        if path.endswith(_TIMER_HOME_SUFFIX):
            return
        full = self.ctx.resolve(node.func)
        if full in _TIMER_CLOCK:
            self.report(
                node,
                f"timer call `{full}` bypasses repro.obs.clock; import "
                "`monotonic` from repro.obs.clock so tests can inject a "
                "FakeClock",
            )
