"""``python -m repro lint`` — the reprolint command.

Exit contract (matching the repo CLI): 0 = clean tree, 2 = findings or
usage/library error (errors print one ``error: ...`` line on stderr).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from ..errors import ReproError
from .baseline import DEFAULT_BASELINE_PATH, Baseline
from .engine import LintResult, lint_paths
from .rules import RULES

__all__ = ["add_lint_arguments", "run_lint"]

#: Version stamp of the ``--format json`` document layout.
JSON_OUTPUT_VERSION = 1


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the lint flags to ``parser`` (shared with `repro lint`)."""
    parser.add_argument(
        "paths", nargs="*", default=["src"],
        help="files/directories to lint (default: src)",
    )
    parser.add_argument(
        "--format", choices=["human", "json"], default="human",
        help="output format (default: human)",
    )
    parser.add_argument(
        "--select", default=None, metavar="RPR001,RPR002",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--baseline", default=None, metavar="PATH",
        help=f"baseline file (default: {DEFAULT_BASELINE_PATH} if present)",
    )
    parser.add_argument(
        "--no-baseline", action="store_true",
        help="ignore any baseline file",
    )
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="write the current findings as the new baseline and exit 0",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalogue and exit",
    )


def _resolve_rules(select: Optional[str]):
    if select is None:
        return [RULES.get(rule_id) for rule_id in RULES]
    return [RULES.get(token.strip()) for token in select.split(",") if token.strip()]


def _resolve_baseline(args: argparse.Namespace) -> Optional[Baseline]:
    if args.no_baseline or args.write_baseline:
        return None
    if args.baseline is not None:
        return Baseline.load(Path(args.baseline))
    default = Path(DEFAULT_BASELINE_PATH)
    if default.exists():
        return Baseline.load(default)
    return None


def _print_human(result: LintResult) -> None:
    for finding in result.findings:
        print(finding.format())
    tail = (
        f"{len(result.findings)} finding(s) in {result.files} file(s)"
        f" ({len(result.baselined)} baselined,"
        f" {len(result.suppressed)} suppressed)"
    )
    print(tail)


def _print_json(result: LintResult) -> None:
    document = {
        "version": JSON_OUTPUT_VERSION,
        "files": result.files,
        "findings": [finding.to_dict() for finding in result.findings],
        "counts": {
            "findings": len(result.findings),
            "baselined": len(result.baselined),
            "suppressed": len(result.suppressed),
        },
    }
    print(json.dumps(document, indent=2, sort_keys=True))


def _list_rules() -> int:
    for rule_id in RULES:
        rule = RULES.get(rule_id)
        print(f"{rule_id}  {rule.title}")
        print(f"    {rule.description}")
    return 0


def run_lint(args: argparse.Namespace) -> int:
    """Execute the lint subcommand; returns the process exit code."""
    if args.list_rules:
        return _list_rules()
    rule_classes = _resolve_rules(args.select)
    baseline = _resolve_baseline(args)
    result = lint_paths(args.paths, rule_classes, baseline=baseline)
    if args.write_baseline:
        target = Path(args.baseline or DEFAULT_BASELINE_PATH)
        Baseline.from_findings(result.findings).save(target)
        print(
            f"wrote baseline {target} ({len(result.findings)} entr"
            f"{'y' if len(result.findings) == 1 else 'ies'})"
        )
        return 0
    if args.format == "json":
        _print_json(result)
    else:
        _print_human(result)
    return 0 if result.clean else 2


def main(argv: Optional[List[str]] = None) -> int:
    """Standalone entry point (``python -m repro.devtools.cli``)."""
    parser = argparse.ArgumentParser(
        prog="reprolint",
        description="AST-based invariant linter for the repro tree",
    )
    add_lint_arguments(parser)
    args = parser.parse_args(argv)
    try:
        return run_lint(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
