"""repro.devtools — static analysis guarding the reproduction's invariants.

The headline claims of this repo (bit-identical event-vs-batched parity,
byte-identical CLI runs, serial==process sweep equality, spec-hash
content addressing) rest on structural invariants — all RNG flows from
derived seeds, ``GraphView`` arrays are never written outside
``network/views.py``, artifacts are frozen and JSON-typed, registries are
import-time string literals. Tests *sample* those invariants; the linter
here (``python -m repro lint``) enforces them on every line.

Layout:

* :mod:`~repro.devtools.engine` — single-pass AST walker + rule dispatch;
* :mod:`~repro.devtools.rules` — the RPR001–RPR007 catalogue and the
  :data:`~repro.devtools.rules.RULES` registry;
* :mod:`~repro.devtools.baseline` — committed grandfathered findings;
* :mod:`~repro.devtools.cli` — the ``repro lint`` command.
"""

from .baseline import DEFAULT_BASELINE_PATH, Baseline
from .engine import FileContext, LintResult, Rule, lint_file, lint_paths
from .findings import Finding
from .rules import RULES, register_deprecation, register_rule

__all__ = [
    "Baseline",
    "DEFAULT_BASELINE_PATH",
    "FileContext",
    "Finding",
    "LintResult",
    "RULES",
    "Rule",
    "lint_file",
    "lint_paths",
    "register_deprecation",
    "register_rule",
]
