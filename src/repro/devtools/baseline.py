"""Grandfathered-finding baseline: commit the debt, block the growth.

A baseline entry pins a known finding by ``(path, rule, stripped source
line)`` plus an occurrence count — line numbers are deliberately not part
of the key, so unrelated edits above a grandfathered finding do not churn
the file. ``python -m repro lint --write-baseline`` regenerates it from
the current tree; CI then fails on any finding *not* covered by the
committed baseline.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path
from typing import Dict, Iterable, List, Tuple

from ..errors import ReproError
from .findings import Finding

__all__ = ["BASELINE_VERSION", "Baseline", "DEFAULT_BASELINE_PATH"]

BASELINE_VERSION = 1
DEFAULT_BASELINE_PATH = ".reprolint-baseline.json"

_Key = Tuple[str, str, str]


class Baseline:
    """A multiset of grandfathered findings."""

    def __init__(self, counts: Dict[_Key, int]) -> None:
        self._counts = dict(counts)

    def __len__(self) -> int:
        return sum(self._counts.values())

    @staticmethod
    def _key(finding: Finding) -> _Key:
        return (finding.path, finding.rule, finding.content)

    @classmethod
    def from_findings(cls, findings: Iterable[Finding]) -> "Baseline":
        return cls(Counter(cls._key(f) for f in findings))

    def split(
        self, findings: List[Finding]
    ) -> Tuple[List[Finding], List[Finding]]:
        """Partition ``findings`` into ``(new, baselined)``.

        Each baseline entry absorbs at most its recorded count, in
        source order, so *adding* an occurrence of a grandfathered
        pattern still fails the lint.
        """
        budget = dict(self._counts)
        new: List[Finding] = []
        baselined: List[Finding] = []
        for finding in findings:
            key = self._key(finding)
            if budget.get(key, 0) > 0:
                budget[key] -= 1
                baselined.append(finding)
            else:
                new.append(finding)
        return new, baselined

    # -- persistence ---------------------------------------------------------

    def to_document(self) -> Dict:
        entries = [
            {"path": path, "rule": rule, "content": content, "count": count}
            for (path, rule, content), count in sorted(self._counts.items())
            if count > 0
        ]
        return {"version": BASELINE_VERSION, "entries": entries}

    @classmethod
    def from_document(cls, document: Dict) -> "Baseline":
        if not isinstance(document, dict):
            raise ReproError("baseline document must be a JSON object")
        version = document.get("version")
        if version != BASELINE_VERSION:
            raise ReproError(
                f"unsupported baseline version {version!r} "
                f"(expected {BASELINE_VERSION})"
            )
        counts: Dict[_Key, int] = {}
        for entry in document.get("entries", []):
            try:
                key = (
                    str(entry["path"]),
                    str(entry["rule"]),
                    str(entry["content"]),
                )
                count = int(entry.get("count", 1))
            except (KeyError, TypeError, ValueError) as exc:
                raise ReproError(f"malformed baseline entry {entry!r}") from exc
            counts[key] = counts.get(key, 0) + count
        return cls(counts)

    def save(self, path: Path) -> None:
        path.write_text(
            json.dumps(self.to_document(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        try:
            document = json.loads(path.read_text(encoding="utf-8"))
        except OSError as exc:
            raise ReproError(f"cannot read baseline {path}: {exc}") from exc
        except ValueError as exc:
            raise ReproError(f"baseline {path} is not valid JSON: {exc}") from exc
        return cls.from_document(document)
