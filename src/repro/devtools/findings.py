"""The lint finding artifact: frozen, JSON-round-trippable, sortable."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Mapping, Tuple

__all__ = ["Finding"]


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location.

    Attributes:
        rule: rule identifier (``"RPR001"``, ...; ``"RPR000"`` marks a
            file the linter could not parse).
        path: posix-style path of the offending file, relative to the
            lint invocation's working directory when possible.
        line / col: 1-based line and 0-based column of the offending
            node.
        message: human-readable description of the violation.
        content: the stripped source line — the baseline's
            line-number-independent anchor for grandfathered findings.
    """

    rule: str
    path: str
    line: int
    col: int
    message: str
    content: str = ""

    def sort_key(self) -> Tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule)

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col + 1}: {self.rule} {self.message}"

    def to_dict(self) -> Dict[str, Any]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "content": self.content,
        }

    @classmethod
    def from_dict(cls, document: Mapping[str, Any]) -> "Finding":
        return cls(
            rule=str(document["rule"]),
            path=str(document["path"]),
            line=int(document["line"]),
            col=int(document["col"]),
            message=str(document["message"]),
            content=str(document.get("content", "")),
        )
