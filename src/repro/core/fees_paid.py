"""Expected fees a user pays for their own transactions (``E_fees``).

Section II-C:

    E_fees(u) = N_u * Σ_{v != u} hops(u, v) * f^T_avg * p_trans(u, v)

with ``hops`` derived from the shortest-path distance ``d(u, v)``. The
paper states fees are paid "to every intermediary node in the path" but
then charges ``d(u, v) * f^T_avg``; its Section IV proofs consistently use
the intermediary count ``d(u, v) - 1``. Both conventions are supported:

* ``"path-length"`` — charge ``d(u, v)`` per the Section II-C formula
  (default for the joining-user optimisation, matching Thm 1-5 statements);
* ``"intermediaries"`` — charge ``d(u, v) - 1`` (used by the Section IV
  equilibrium analysis; see :mod:`repro.equilibrium`).

``d(u, v) = +inf`` for unreachable ``v`` makes ``E_fees`` infinite, which
is how the model assigns utility ``-inf`` to disconnected strategies.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Dict, Hashable, Mapping

from ..errors import InvalidParameter
from ..network.views import GraphView, bfs_distances

__all__ = ["expected_fees", "single_source_hops", "HOP_CONVENTIONS"]

HOP_CONVENTIONS = ("path-length", "intermediaries")


def single_source_hops(digraph, source: Hashable) -> Dict[Hashable, int]:
    """Directed BFS hop distances from ``source`` (missing = unreachable).

    ``digraph`` may be a :class:`~repro.network.views.GraphView` (one
    vectorised BFS over the CSR arrays) or a legacy ``nx.DiGraph``.
    """
    if isinstance(digraph, GraphView):
        if source not in digraph:
            return {}
        levels = bfs_distances(digraph, digraph.index_of(source))
        return {
            digraph.nodes[i]: int(d)
            for i, d in enumerate(levels)
            if d >= 0
        }
    if source not in digraph:
        return {}
    dist: Dict[Hashable, int] = {source: 0}
    queue = deque([source])
    while queue:
        v = queue.popleft()
        for w in digraph.successors(v):
            if w not in dist:
                dist[w] = dist[v] + 1
                queue.append(w)
    return dist


def expected_fees(
    digraph,
    user: Hashable,
    own_probs: Mapping[Hashable, float],
    user_tx_rate: float,
    fee_out_avg: float,
    hop_convention: str = "path-length",
) -> float:
    """``E_fees(user)`` under the given receiver distribution.

    Args:
        digraph: the (possibly reduced) directed network view — a
            :class:`~repro.network.views.GraphView` or an ``nx.DiGraph``.
        user: the sender.
        own_probs: ``p_trans(user, v)`` per receiver ``v`` (should sum to 1
            over intended receivers).
        user_tx_rate: ``N_u``.
        fee_out_avg: ``f^T_avg``.
        hop_convention: see module docstring.

    Returns:
        expected fee cost per unit time; ``math.inf`` when any intended
        receiver is unreachable.
    """
    if hop_convention not in HOP_CONVENTIONS:
        raise InvalidParameter(
            f"hop_convention must be one of {HOP_CONVENTIONS}, got {hop_convention!r}"
        )
    dist = single_source_hops(digraph, user)
    total = 0.0
    for receiver, prob in own_probs.items():
        if prob <= 0 or receiver == user:
            continue
        if receiver not in dist:
            return math.inf
        hops = dist[receiver]
        if hop_convention == "intermediaries":
            hops = max(hops - 1, 0)
        total += hops * prob
    return user_tx_rate * fee_out_avg * total
