"""Expected routing revenue ``E_rev`` (Eq. 3 / Section IV assumption 1).

A node earns ``f_avg`` each time it forwards someone else's transaction.
Writing traffic as shortest-path shares weighted by the transaction
distribution, the expected revenue per unit time of node ``u`` is

    E_rev(u) = f_avg * Σ_{v1 != v2, v1,v2 != u}
               m_u(v1, v2) / m(v1, v2) * N_{v1} * p_trans(v1, v2)

i.e. ``f_avg`` times the pair-weighted *intermediary* betweenness of ``u``.
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, Iterable, Optional

from ..network.betweenness import pair_weighted_betweenness

__all__ = ["expected_revenue", "revenue_profile"]


def revenue_profile(
    digraph,
    pair_weight: Callable[[Hashable, Hashable], float],
    fee_avg: float,
    sources: Optional[Iterable[Hashable]] = None,
) -> Dict[Hashable, float]:
    """Expected revenue of *every* node under ``pair_weight`` traffic.

    ``digraph`` may be a :class:`~repro.network.views.GraphView` (the fast
    CSR path) or a legacy ``nx.DiGraph``. ``pair_weight(s, r)`` should
    already fold in the sender rate, e.g. ``N_s * p_trans(s, r)``.
    """
    result = pair_weighted_betweenness(digraph, pair_weight, sources=sources)
    return {node: fee_avg * value for node, value in result.node.items()}


def expected_revenue(
    digraph,
    user: Hashable,
    pair_weight: Callable[[Hashable, Hashable], float],
    fee_avg: float,
    sources: Optional[Iterable[Hashable]] = None,
) -> float:
    """``E_rev(user)``; see :func:`revenue_profile`."""
    if user not in digraph:
        return 0.0
    return revenue_profile(digraph, pair_weight, fee_avg, sources=sources).get(
        user, 0.0
    )
