"""The paper's primary contribution: joining-user utility and optimisers."""

from .algorithms import (
    OptimisationResult,
    brute_force,
    continuous_local_search,
    count_divisions,
    exhaustive_discrete,
    fund_divisions,
    greedy_fixed_funds,
    greedy_over_actions,
    lock_grid,
)
from .costmodels import (
    AmortisedOnchainCost,
    CostModel,
    DiscountedOpportunityCost,
    LinearOpportunityCost,
)
from .costs import (
    benefit_positivity_condition,
    channel_cost,
    onchain_alternative_cost,
    strategy_cost,
)
from .fees_paid import HOP_CONVENTIONS, expected_fees, single_source_hops
from .objective import ObjectiveEvaluator
from .properties import (
    SubmodularityReport,
    check_monotonicity,
    check_submodularity,
    find_negative_utility_example,
)
from .revenue import expected_revenue, revenue_profile
from .strategy import Action, ActionSpace, Strategy
from .utility import JoiningUserModel

__all__ = [
    "Action",
    "ActionSpace",
    "AmortisedOnchainCost",
    "CostModel",
    "DiscountedOpportunityCost",
    "LinearOpportunityCost",
    "HOP_CONVENTIONS",
    "JoiningUserModel",
    "ObjectiveEvaluator",
    "OptimisationResult",
    "Strategy",
    "SubmodularityReport",
    "benefit_positivity_condition",
    "brute_force",
    "channel_cost",
    "check_monotonicity",
    "check_submodularity",
    "continuous_local_search",
    "count_divisions",
    "exhaustive_discrete",
    "expected_fees",
    "expected_revenue",
    "find_negative_utility_example",
    "fund_divisions",
    "greedy_fixed_funds",
    "greedy_over_actions",
    "lock_grid",
    "onchain_alternative_cost",
    "revenue_profile",
    "single_source_hops",
    "strategy_cost",
]
