"""Optimisation algorithms of Section III.

The four entry points share the :class:`~repro.scenarios.registry
.JoinAlgorithm` protocol — ``algorithm(model, **kwargs) ->
OptimisationResult`` — and register themselves in the scenario layer's
algorithm registry so ``AlgorithmSpec(kind="greedy")`` and friends resolve
to them.
"""

from ...scenarios.registry import register_algorithm
from .bruteforce import brute_force
from .common import OptimisationResult
from .continuous import continuous_local_search, lock_grid
from .exhaustive import count_divisions, exhaustive_discrete, fund_divisions
from .greedy import greedy_fixed_funds, greedy_over_actions

register_algorithm("greedy")(greedy_fixed_funds)
register_algorithm("exhaustive")(exhaustive_discrete)
register_algorithm("continuous")(continuous_local_search)
register_algorithm("bruteforce")(brute_force)

__all__ = [
    "OptimisationResult",
    "brute_force",
    "continuous_local_search",
    "count_divisions",
    "exhaustive_discrete",
    "fund_divisions",
    "greedy_fixed_funds",
    "greedy_over_actions",
    "lock_grid",
]
