"""Optimisation algorithms of Section III."""

from .bruteforce import brute_force
from .common import OptimisationResult
from .continuous import continuous_local_search, lock_grid
from .exhaustive import count_divisions, exhaustive_discrete, fund_divisions
from .greedy import greedy_fixed_funds, greedy_over_actions

__all__ = [
    "OptimisationResult",
    "brute_force",
    "continuous_local_search",
    "count_divisions",
    "exhaustive_discrete",
    "fund_divisions",
    "greedy_fixed_funds",
    "greedy_over_actions",
    "lock_grid",
]
