"""Algorithm 1 — greedy channel selection with fixed funds per channel.

Section III-B: with every channel locking the same amount ``l1``, the
budget allows at most ``M = floor(B_u / (C + l1))`` channels. Greedily
adding the channel with the largest marginal gain of the monotone
submodular ``U' = E_rev - E_fees`` and returning the best prefix yields a
``(1 - 1/e)``-approximation (Thm 4) in ``O(M · n)`` objective evaluations.
"""

from __future__ import annotations

import math
from typing import List, Sequence

from ...errors import InvalidParameter
from ..objective import ObjectiveEvaluator
from ..strategy import Action, ActionSpace, Strategy
from ..utility import JoiningUserModel
from .common import OptimisationResult

__all__ = ["greedy_fixed_funds", "greedy_over_actions"]


def greedy_over_actions(
    evaluator: ObjectiveEvaluator,
    omega: Sequence[Action],
    max_channels: int,
    allow_reuse: bool = False,
) -> OptimisationResult:
    """Core greedy loop of Algorithm 1 over an explicit action set.

    Args:
        evaluator: caching objective (normally ``U'``).
        omega: candidate actions Ω.
        max_channels: ``M``, the prefix length bound.
        allow_reuse: when True an action may be picked repeatedly
            (parallel channels); the paper removes picked actions from
            ``A``, which is the default.

    Returns:
        the best greedy *prefix* by objective value (the paper's final
        ``argmax`` over ``PU``).
    """
    if max_channels < 0:
        raise InvalidParameter("max_channels must be >= 0")
    available: List[Action] = list(omega)
    strategy = Strategy()
    prefix_strategies: List[Strategy] = [strategy]
    prefix_values: List[float] = [evaluator(strategy)]
    while len(strategy) < max_channels and available:
        best_action = None
        best_value = -math.inf
        for action in available:
            value = evaluator(strategy.with_action(action))
            if value > best_value:
                best_value = value
                best_action = action
        if best_action is None:
            break
        strategy = strategy.with_action(best_action)
        if not allow_reuse:
            available.remove(best_action)
        prefix_strategies.append(strategy)
        prefix_values.append(best_value)
    best_index = max(range(len(prefix_values)), key=lambda i: prefix_values[i])
    best = prefix_strategies[best_index]
    return OptimisationResult(
        algorithm="greedy",
        strategy=best,
        objective_value=prefix_values[best_index],
        utility=evaluator.model.utility(best),
        evaluations=evaluator.evaluations,
        details={
            "prefix_values": prefix_values,
            "prefix_sizes": [len(s) for s in prefix_strategies],
        },
    )


def greedy_fixed_funds(
    model: JoiningUserModel,
    budget: float,
    lock: float,
    objective: str = "simplified",
) -> OptimisationResult:
    """Algorithm 1 end-to-end: build Ω with fixed lock ``l1`` and run greedy.

    Args:
        model: joining-user utility model.
        budget: ``B_u``.
        lock: ``l1``, funds locked into every channel.
        objective: objective to greedily maximise; the paper's guarantee
            holds for ``"simplified"`` (``U'``).
    """
    if budget <= 0:
        raise InvalidParameter("budget must be > 0")
    omega = ActionSpace.fixed_lock(model.base_graph, model.new_user, lock)
    max_channels = ActionSpace.max_channels(model.params, budget, lock)
    evaluator = ObjectiveEvaluator(model, kind=objective)
    result = greedy_over_actions(evaluator, omega, max_channels)
    result.details["max_channels"] = max_channels
    result.details["budget"] = budget
    result.details["lock"] = lock
    result.strategy.check_budget(model.params, budget)
    return result
