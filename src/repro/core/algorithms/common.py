"""Shared result types for the Section III optimisation algorithms."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from ..strategy import Strategy

__all__ = ["OptimisationResult"]


@dataclass
class OptimisationResult:
    """Outcome of one optimiser run.

    Attributes:
        algorithm: short name (``"greedy"``, ``"exhaustive"``, ...).
        strategy: the best strategy found.
        objective_value: value of the objective the algorithm optimised
            (``U'`` for Algorithms 1-2, ``U^b`` for the continuous one).
        utility: the *full* utility ``U`` of the chosen strategy, so that
            runs with different objectives are comparable.
        evaluations: number of true (uncached) objective evaluations.
        details: algorithm-specific extras (prefix values, division counts,
            iteration logs, ...).
    """

    algorithm: str
    strategy: Strategy
    objective_value: float
    utility: float
    evaluations: int = 0
    details: Dict[str, object] = field(default_factory=dict)

    def summary(self) -> str:
        """One-line human-readable description."""
        peers = ", ".join(
            f"{action.peer}:{action.locked:g}" for action in self.strategy
        )
        return (
            f"[{self.algorithm}] objective={self.objective_value:.6g} "
            f"utility={self.utility:.6g} channels={len(self.strategy)} "
            f"({peers}) evals={self.evaluations}"
        )
