"""Shared result types for the Section III optimisation algorithms."""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping

from ..strategy import Action, Strategy

__all__ = ["OptimisationResult"]

#: Version stamp of the ``to_dict`` document layout.
RESULT_SCHEMA_VERSION = 1


@dataclass
class OptimisationResult:
    """Outcome of one optimiser run.

    Attributes:
        algorithm: short name (``"greedy"``, ``"exhaustive"``, ...).
        strategy: the best strategy found.
        objective_value: value of the objective the algorithm optimised
            (``U'`` for Algorithms 1-2, ``U^b`` for the continuous one).
        utility: the *full* utility ``U`` of the chosen strategy, so that
            runs with different objectives are comparable.
        evaluations: number of true (uncached) objective evaluations.
        details: algorithm-specific extras (prefix values, division counts,
            iteration logs, ...).
    """

    algorithm: str
    strategy: Strategy
    objective_value: float
    utility: float
    evaluations: int = 0
    details: Dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        """Plain-JSON document; the strategy flattens to ``[peer, locked]``
        pairs (JSON-scalar peers round-trip losslessly)."""
        details = json.loads(json.dumps(self.details, default=str))
        return {
            "schema_version": RESULT_SCHEMA_VERSION,
            "algorithm": self.algorithm,
            "strategy": [
                [action.peer, action.locked] for action in self.strategy
            ],
            "objective_value": self.objective_value,
            "utility": self.utility,
            "evaluations": self.evaluations,
            "details": details,
        }

    @classmethod
    def from_dict(cls, document: Mapping[str, Any]) -> "OptimisationResult":
        """Rebuild a result from a :meth:`to_dict` document."""
        version = document.get("schema_version", RESULT_SCHEMA_VERSION)
        if version != RESULT_SCHEMA_VERSION:
            raise ValueError(
                f"unsupported OptimisationResult schema_version {version!r}"
            )
        return cls(
            algorithm=document["algorithm"],
            strategy=Strategy(
                Action(peer, locked)
                for peer, locked in document.get("strategy", [])
            ),
            objective_value=document["objective_value"],
            utility=document["utility"],
            evaluations=document.get("evaluations", 0),
            details=dict(document.get("details", {})),
        )

    def summary(self) -> str:
        """One-line human-readable description."""
        peers = ", ".join(
            f"{action.peer}:{action.locked:g}" for action in self.strategy
        )
        return (
            f"[{self.algorithm}] objective={self.objective_value:.6g} "
            f"utility={self.utility:.6g} channels={len(self.strategy)} "
            f"({peers}) evals={self.evaluations}"
        )
