"""Exact optimum by exhaustive enumeration — the baseline for ratio checks.

Enumerates every subset of a candidate action set (optionally every
assignment of discretised locks) that fits the budget, and returns the
true optimum of the requested objective. Exponential; only for the small
instances used in tests and the approximation-ratio benches (E4-E6).
"""

from __future__ import annotations

import math
from itertools import combinations
from typing import Optional, Sequence

from ...errors import InvalidParameter
from ..objective import ObjectiveEvaluator
from ..strategy import Action, ActionSpace, Strategy
from ..utility import JoiningUserModel
from .common import OptimisationResult

__all__ = ["brute_force"]


def brute_force(
    model: JoiningUserModel,
    budget: float,
    omega: Optional[Sequence[Action]] = None,
    lock: float = 0.0,
    objective: str = "simplified",
    max_subset_size: Optional[int] = None,
) -> OptimisationResult:
    """Exact optimum of ``objective`` over budget-feasible subsets of Ω.

    Args:
        model: joining-user utility model.
        budget: ``B_u``.
        omega: candidate actions; defaults to fixed-lock Ω with ``lock``.
        lock: lock used for the default Ω.
        objective: ``"simplified"``, ``"utility"`` or ``"benefit"``.
        max_subset_size: optional cap on subset cardinality (defaults to
            what the budget can afford at the cheapest action cost).
    """
    if budget <= 0:
        raise InvalidParameter("budget must be > 0")
    if omega is None:
        omega = ActionSpace.fixed_lock(model.base_graph, model.new_user, lock)
    omega = list(omega)
    params = model.params
    cheapest = min(
        (action.budget_cost(params) for action in omega), default=math.inf
    )
    affordable = int(budget / cheapest) if cheapest > 0 and cheapest != math.inf else 0
    limit = affordable if max_subset_size is None else min(affordable, max_subset_size)
    evaluator = ObjectiveEvaluator(model, kind=objective)
    best = Strategy()
    best_value = evaluator(best)
    explored = 0
    for size in range(1, limit + 1):
        for subset in combinations(omega, size):
            strategy = Strategy(subset)
            if not strategy.fits_budget(params, budget):
                continue
            explored += 1
            value = evaluator(strategy)
            if value > best_value:
                best_value = value
                best = strategy
    return OptimisationResult(
        algorithm="bruteforce",
        strategy=best,
        objective_value=best_value,
        utility=model.utility(best),
        evaluations=evaluator.evaluations,
        details={"subsets_explored": explored, "omega_size": len(omega)},
    )
