"""Algorithm 2 — exhaustive search over discretised channel funds.

Section III-C: funds locked per channel must be multiples of a granularity
``m``. The budget provides ``U = floor(B_u / m)`` units, split into
``k + 1`` parts where ``k = floor(B_u / C)`` bounds the number of channels
(the final part is capital deliberately left unspent). For every division,
Algorithm 1 runs with step ``j`` forced to lock ``l_j`` units, and the best
division wins — a ``(1 - 1/e)``-approximation of ``U'`` (Thm 5) in
``O(T · (B_u/C) · n)`` steps with ``T = C(U, k+1)`` divisions.

The division count explodes combinatorially (that is the theorem's
pseudo-polynomial bound), so the enumeration is lazy and can be capped
(``max_divisions``) or deduplicated to distinct multisets
(``unique_multisets=True``; the greedy subroutine treats a division as the
multiset of per-step locks sorted descending, so permutations are
redundant).
"""

from __future__ import annotations

import math
from typing import Iterator, List, Optional, Sequence, Tuple

from ...errors import InvalidParameter
from ..objective import ObjectiveEvaluator
from ..strategy import Action, Strategy
from ..utility import JoiningUserModel
from .common import OptimisationResult

__all__ = ["exhaustive_discrete", "fund_divisions", "count_divisions"]


def fund_divisions(
    units: int, parts: int, unique_multisets: bool = True
) -> Iterator[Tuple[int, ...]]:
    """Yield divisions of ``units`` indivisible units into ``parts`` parts.

    With ``unique_multisets`` (default) each division is a non-increasing
    tuple (a partition with at most ``parts`` parts, zero-padded);
    otherwise all weak compositions are generated, matching the paper's
    "array of all divisions" literally.
    """
    if units < 0 or parts < 1:
        raise InvalidParameter("need units >= 0 and parts >= 1")
    if unique_multisets:
        # partitions of `units` into at most `parts` parts, largest first
        def _partitions(remaining: int, slots: int, cap: int) -> Iterator[List[int]]:
            if slots == 1:
                if remaining <= cap:
                    yield [remaining]
                return
            for head in range(min(remaining, cap), -1, -1):
                for tail in _partitions(remaining - head, slots - 1, head):
                    yield [head] + tail

        for division in _partitions(units, parts, units):
            yield tuple(division)
    else:
        def _compositions(remaining: int, slots: int) -> Iterator[List[int]]:
            if slots == 1:
                yield [remaining]
                return
            for head in range(remaining + 1):
                for tail in _compositions(remaining - head, slots - 1):
                    yield [head] + tail

        for division in _compositions(units, parts):
            yield tuple(division)


def count_divisions(units: int, parts: int, unique_multisets: bool = True) -> int:
    """Number of divisions :func:`fund_divisions` would yield.

    Compositions: ``C(units + parts - 1, parts - 1)`` (the paper's ``T``
    up to its binomial convention); partitions are counted by recursion.
    """
    if not unique_multisets:
        return math.comb(units + parts - 1, parts - 1)
    seen = {}

    def _count(remaining: int, slots: int, cap: int) -> int:
        if slots == 1:
            return 1 if remaining <= cap else 0
        key = (remaining, slots, min(cap, remaining))
        if key in seen:
            return seen[key]
        total = sum(
            _count(remaining - head, slots - 1, head)
            for head in range(min(remaining, cap), -1, -1)
        )
        seen[key] = total
        return total

    return _count(units, parts, units)


def _greedy_with_lock_schedule(
    evaluator: ObjectiveEvaluator,
    model: JoiningUserModel,
    locks: Sequence[float],
    budget: float,
) -> Tuple[Strategy, float]:
    """Algorithm 1 with step ``j`` restricted to lock ``locks[j]``.

    Steps whose lock no longer fits the remaining budget are skipped;
    the best prefix by objective value is returned.
    """
    params = model.params
    peers = [p for p in model.base_graph.nodes]
    strategy = Strategy()
    spent = 0.0
    best_strategy = strategy
    best_value = evaluator(strategy)
    used_peers: set = set()
    for lock in locks:
        step_cost = params.onchain_cost + lock
        if spent + step_cost > budget + 1e-9:
            continue
        best_action = None
        best_step_value = -math.inf
        for peer in peers:
            if peer in used_peers:
                continue
            value = evaluator(strategy.with_action(Action(peer, lock)))
            if value > best_step_value:
                best_step_value = value
                best_action = Action(peer, lock)
        if best_action is None:
            break
        strategy = strategy.with_action(best_action)
        used_peers.add(best_action.peer)
        spent += step_cost
        if best_step_value > best_value:
            best_value = best_step_value
            best_strategy = strategy
    return best_strategy, best_value


def exhaustive_discrete(
    model: JoiningUserModel,
    budget: float,
    granularity: float,
    objective: str = "simplified",
    unique_multisets: bool = True,
    max_divisions: Optional[int] = None,
) -> OptimisationResult:
    """Algorithm 2 end-to-end.

    Args:
        model: joining-user utility model.
        budget: ``B_u``.
        granularity: ``m`` — locks are ``k * m``.
        objective: objective for the greedy subroutine (paper: ``U'``).
        unique_multisets: deduplicate permuted divisions (see module doc).
        max_divisions: optional cap on how many divisions to try; when hit,
            the result records ``truncated=True`` (the approximation
            guarantee then only covers the explored region).
    """
    if budget <= 0 or granularity <= 0:
        raise InvalidParameter("budget and granularity must be > 0")
    params = model.params
    units = int(budget / granularity)
    max_channels = int(budget / params.onchain_cost)
    if max_channels < 1:
        raise InvalidParameter("budget cannot afford a single channel")
    evaluator = ObjectiveEvaluator(model, kind=objective)
    best_strategy = Strategy()
    best_value = evaluator(best_strategy)
    divisions_tried = 0
    truncated = False
    for division in fund_divisions(
        units, max_channels + 1, unique_multisets=unique_multisets
    ):
        if max_divisions is not None and divisions_tried >= max_divisions:
            truncated = True
            break
        divisions_tried += 1
        # The first `max_channels` parts are lock schedules; the final part
        # is unspent reserve.
        locks = [part * granularity for part in division[:max_channels]]
        strategy, value = _greedy_with_lock_schedule(
            evaluator, model, locks, budget
        )
        if value > best_value:
            best_value = value
            best_strategy = strategy
    best_strategy.check_budget(params, budget)
    return OptimisationResult(
        algorithm="exhaustive",
        strategy=best_strategy,
        objective_value=best_value,
        utility=model.utility(best_strategy),
        evaluations=evaluator.evaluations,
        details={
            "divisions_tried": divisions_tried,
            "units": units,
            "max_channels": max_channels,
            "granularity": granularity,
            "truncated": truncated,
        },
    )
