"""Continuous-funds optimisation of the benefit function (Section III-D).

With locks drawn from a continuous range, the paper maximises the *benefit
function* ``U^b(S) = C_u + U(S)`` — the gain over transacting purely
on-chain — which stays submodular and non-negative whenever the chosen
channels satisfy ``E_fees + (B_u/C) · L_u(v,l) < C_u``. It then invokes
Lee et al.'s local-search framework for non-monotone submodular
maximisation under a knapsack constraint to obtain a 1/5-approximation.

This module implements that recipe as an *approximate local search* over
(peer, lock) ground elements:

1. seed with the best single action;
2. repeatedly apply the best strictly-improving **add**, **drop**, or
   **swap** move that keeps the knapsack (budget) constraint feasible,
   requiring relative improvement ``>= epsilon / k^2`` per Lee et al.'s
   polynomial-time variant;
3. locks come from a geometric grid refined around the incumbent
   (continuous amounts cannot be enumerated; the grid-then-refine schedule
   is the standard discretisation and preserves the guarantee up to the
   grid resolution).

Because the paper's frozen-rate utility is non-increasing in the lock
amount (capital only matters through the reduced subgraph), callers who
want lock amounts to be economically meaningful should construct the model
with ``routing_amount > 0``; the optimiser then discovers that locks below
the routing amount make a channel useless for forwarding.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ...errors import InvalidParameter
from ..costs import benefit_positivity_condition
from ..objective import ObjectiveEvaluator
from ..strategy import Action, Strategy
from ..utility import JoiningUserModel
from .common import OptimisationResult

__all__ = ["continuous_local_search", "lock_grid"]


def lock_grid(
    budget: float,
    params_onchain_cost: float,
    routing_amount: float = 0.0,
    levels: int = 6,
) -> List[float]:
    """Candidate lock amounts: 0, the routing amount, and a geometric grid.

    The grid spans from 1% of the affordable maximum to the full
    affordable maximum ``budget - C`` in ``levels`` geometric steps.
    """
    if budget <= params_onchain_cost:
        return [0.0]
    affordable = budget - params_onchain_cost
    grid = {0.0}
    if 0.0 < routing_amount <= affordable:
        grid.add(routing_amount)
    lo = affordable * 0.01
    for value in np.geomspace(lo, affordable, levels):
        grid.add(float(value))
    return sorted(grid)


def _feasible(strategy: Strategy, model: JoiningUserModel, budget: float) -> bool:
    return strategy.fits_budget(model.params, budget)


def continuous_local_search(
    model: JoiningUserModel,
    budget: float,
    locks: Optional[Sequence[float]] = None,
    epsilon: float = 0.01,
    max_iterations: int = 500,
    refine_rounds: int = 2,
) -> OptimisationResult:
    """Local-search maximisation of ``U^b`` under the budget knapsack.

    Args:
        model: joining-user utility model (ideally with
            ``routing_amount > 0`` so locks matter; see module docstring).
        budget: ``B_u``.
        locks: candidate lock amounts; default :func:`lock_grid`.
        epsilon: relative improvement threshold of the approximate local
            search (Lee et al.); smaller = closer to exact local optimum.
        max_iterations: hard cap on accepted moves.
        refine_rounds: after convergence, rebuild the lock grid around the
            incumbent locks and re-run, this many times.
    """
    if budget <= 0:
        raise InvalidParameter("budget must be > 0")
    params = model.params
    if locks is None:
        locks = lock_grid(budget, params.onchain_cost, model.routing_amount)
    evaluator = ObjectiveEvaluator(model, kind="benefit")
    peers = list(model.base_graph.nodes)

    def ground_set(lock_values: Sequence[float]) -> List[Action]:
        return [
            Action(peer, lock)
            for peer in peers
            for lock in lock_values
            if params.onchain_cost + lock <= budget + 1e-9
        ]

    def local_search(start: Strategy, elements: List[Action]) -> Strategy:
        current = start
        current_value = evaluator(current)
        for _ in range(max_iterations):
            threshold = abs(current_value) * epsilon / max(len(elements), 1) ** 2
            threshold = max(threshold, 1e-12)
            best_move: Optional[Strategy] = None
            best_value = current_value
            # adds
            for element in elements:
                if element in current:
                    continue
                candidate = current.with_action(element)
                if not _feasible(candidate, model, budget):
                    continue
                value = evaluator(candidate)
                if value > best_value + threshold:
                    best_value = value
                    best_move = candidate
            # drops
            for element in set(current.actions):
                candidate = current.without_action(element)
                value = evaluator(candidate)
                if value > best_value + threshold:
                    best_value = value
                    best_move = candidate
            # swaps (drop one, add one)
            if best_move is None:
                for old in set(current.actions):
                    base = current.without_action(old)
                    for new in elements:
                        if new == old or new in base:
                            continue
                        candidate = base.with_action(new)
                        if not _feasible(candidate, model, budget):
                            continue
                        value = evaluator(candidate)
                        if value > best_value + threshold:
                            best_value = value
                            best_move = candidate
            if best_move is None:
                break
            current = best_move
            current_value = best_value
        return current

    elements = ground_set(locks)
    # Seed: best feasible singleton (Lee et al. seed with the best single
    # element to anchor the approximation factor).
    best_single = Strategy()
    best_single_value = evaluator(best_single)
    for element in elements:
        candidate = Strategy([element])
        if not _feasible(candidate, model, budget):
            continue
        value = evaluator(candidate)
        if value > best_single_value:
            best_single_value = value
            best_single = candidate
    incumbent = local_search(best_single, elements)

    for _ in range(refine_rounds):
        incumbent_locks = {action.locked for action in incumbent}
        refined = set(locks) | incumbent_locks
        for lock in incumbent_locks:
            refined.add(lock * 0.5)
            refined.add(lock * 1.5)
        refined = {
            l for l in refined if 0.0 <= l <= budget - params.onchain_cost
        }
        elements = ground_set(sorted(refined))
        incumbent = local_search(incumbent, elements)

    value = evaluator(incumbent)
    condition_ok = benefit_positivity_condition(
        params,
        expected_fees=model.expected_fees(incumbent),
        budget=budget,
        max_single_channel_cost=max(
            (a.utility_cost(params) for a in incumbent), default=params.onchain_cost
        ),
    )
    return OptimisationResult(
        algorithm="continuous",
        strategy=incumbent,
        objective_value=value,
        utility=model.utility(incumbent),
        evaluations=evaluator.evaluations,
        details={
            "positivity_condition": condition_ok,
            "epsilon": epsilon,
            "lock_candidates": len(elements),
        },
    )
