"""Empirical checks of Theorems 1–3 (objective-function properties).

Theorem 1: ``U`` is submodular. Theorem 2: ``U`` is non-monotone but
``U' = E_rev - E_fees`` is monotone increasing. Theorem 3: ``U`` can be
negative. These checkers sample random configurations and report
violations/witnesses; they back the property-based tests and bench E3.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from .objective import ObjectiveEvaluator
from .strategy import Action, Strategy

__all__ = [
    "SubmodularityReport",
    "check_submodularity",
    "check_monotonicity",
    "find_negative_utility_example",
]


@dataclass(frozen=True)
class SubmodularityReport:
    """Outcome of randomised submodularity trials."""

    trials: int
    violations: int
    worst_gap: float = 0.0
    witnesses: Tuple[Tuple[Strategy, Strategy, Action], ...] = ()

    @property
    def ok(self) -> bool:
        return self.violations == 0


def _random_nested_pair(
    omega: Sequence[Action], rng: np.random.Generator
) -> Tuple[Strategy, Strategy, Action]:
    """Random ``S1 ⊆ S2`` and ``X ∉ S2`` drawn from ``omega``."""
    actions = list(omega)
    rng.shuffle(actions)
    x = actions.pop()
    size2 = int(rng.integers(0, len(actions) + 1))
    chosen2 = actions[:size2]
    size1 = int(rng.integers(0, size2 + 1))
    chosen1 = chosen2[:size1]
    return Strategy(chosen1), Strategy(chosen2), x


def check_submodularity(
    evaluator: ObjectiveEvaluator,
    omega: Sequence[Action],
    trials: int = 100,
    seed: Optional[int] = None,
    tolerance: float = 1e-9,
    keep_witnesses: int = 5,
) -> SubmodularityReport:
    """Test ``f(S2 + X) - f(S2) <= f(S1 + X) - f(S1)`` on random nestings.

    Infinite values (disconnected strategies) are skipped: the paper's
    submodularity argument applies on the connected domain.
    """
    if len(omega) < 2:
        raise ValueError("need at least two candidate actions")
    rng = np.random.default_rng(seed)
    violations = 0
    worst_gap = 0.0
    witnesses: List[Tuple[Strategy, Strategy, Action]] = []
    for _ in range(trials):
        s1, s2, x = _random_nested_pair(omega, rng)
        values = [
            evaluator(s1),
            evaluator(s1.with_action(x)),
            evaluator(s2),
            evaluator(s2.with_action(x)),
        ]
        if any(math.isinf(v) for v in values):
            continue
        gain_small = values[1] - values[0]
        gain_large = values[3] - values[2]
        gap = gain_large - gain_small
        if gap > tolerance:
            violations += 1
            worst_gap = max(worst_gap, gap)
            if len(witnesses) < keep_witnesses:
                witnesses.append((s1, s2, x))
    return SubmodularityReport(
        trials=trials, violations=violations, worst_gap=worst_gap,
        witnesses=tuple(witnesses),
    )


def check_monotonicity(
    evaluator: ObjectiveEvaluator,
    omega: Sequence[Action],
    trials: int = 100,
    seed: Optional[int] = None,
    tolerance: float = 1e-9,
) -> Tuple[int, int]:
    """Count monotonicity violations ``f(S + X) < f(S)`` on random draws.

    Returns ``(trials_run, violations)``. For ``U'`` Thm 2 predicts zero
    violations; for the full ``U`` violations are expected to exist for
    suitable cost parameters.
    """
    rng = np.random.default_rng(seed)
    violations = 0
    ran = 0
    for _ in range(trials):
        s1, _s2, x = _random_nested_pair(omega, rng)
        before = evaluator(s1)
        after = evaluator(s1.with_action(x))
        if math.isinf(before) or math.isinf(after):
            continue
        ran += 1
        if after < before - tolerance:
            violations += 1
    return ran, violations


def find_negative_utility_example(
    evaluator: ObjectiveEvaluator,
    omega: Sequence[Action],
    trials: int = 100,
    seed: Optional[int] = None,
) -> Optional[Strategy]:
    """Search for a strategy with strictly negative finite value (Thm 3)."""
    rng = np.random.default_rng(seed)
    for _ in range(trials):
        s1, s2, _x = _random_nested_pair(omega, rng)
        for strategy in (s1, s2):
            value = evaluator(strategy)
            if not math.isinf(value) and value < 0:
                return strategy
    return None
