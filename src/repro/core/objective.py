"""Memoised objective evaluation and marginal gains.

The optimisation algorithms of Section III repeatedly evaluate the same
strategies (greedy prefixes, exhaustive-search restarts). This wrapper
caches objective values by strategy and counts true evaluations so the
Thm 4/5 cost statements ("O(M·n) estimations of λ_uv") can be checked
empirically (bench E4/E5).
"""

from __future__ import annotations

from typing import Dict, Optional

from ..errors import InvalidParameter
from .strategy import Action, Strategy
from .utility import JoiningUserModel

__all__ = ["ObjectiveEvaluator"]


class ObjectiveEvaluator:
    """Caching callable around one of the model's objectives.

    Args:
        model: the joining-user utility model.
        kind: ``"simplified"`` (U'), ``"utility"`` (U) or ``"benefit"`` (U^b).
        max_cache: optional cap on memoised entries (FIFO eviction); the
            default keeps everything, which is fine for the instance sizes
            the algorithms target.
    """

    def __init__(
        self,
        model: JoiningUserModel,
        kind: str = "simplified",
        max_cache: Optional[int] = None,
    ) -> None:
        if kind not in ("simplified", "utility", "benefit"):
            raise InvalidParameter(f"unknown objective kind {kind!r}")
        if max_cache is not None and max_cache < 1:
            raise InvalidParameter("max_cache must be >= 1")
        self.model = model
        self.kind = kind
        self.max_cache = max_cache
        self._cache: Dict[Strategy, float] = {}
        self.evaluations = 0
        self.cache_hits = 0

    def __call__(self, strategy: Strategy) -> float:
        if strategy in self._cache:
            self.cache_hits += 1
            return self._cache[strategy]
        value = self.model.objective(strategy, kind=self.kind)
        self.evaluations += 1
        if self.max_cache is not None and len(self._cache) >= self.max_cache:
            self._cache.pop(next(iter(self._cache)))
        self._cache[strategy] = value
        return value

    def marginal(self, strategy: Strategy, action: Action) -> float:
        """``f(S ∪ {X}) - f(S)`` for this objective."""
        return self(strategy.with_action(action)) - self(strategy)

    def reset_counters(self) -> None:
        self.evaluations = 0
        self.cache_hits = 0

    def clear(self) -> None:
        self._cache.clear()
        self.reset_counters()
