"""Actions, strategies, and action sets (Ω) of the joining user.

Section II-C: the new user ``u`` picks a strategy ``S ⊆ Ω`` where each
element ``(v_i, l_i)`` is a channel to node ``v_i`` funded with ``l_i``
coins from ``u``'s side. Both Ω and S may contain the same endpoint more
than once with different funds (parallel channels). The budget constraint
is ``Σ_j (C + l_j) <= B_u``.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Hashable, Iterable, Iterator, List, Tuple

from ..errors import BudgetExceeded, InvalidParameter
from ..network.graph import ChannelGraph
from ..params import ModelParameters

__all__ = ["Action", "Strategy", "ActionSpace"]


@dataclass(frozen=True, order=True)
class Action:
    """One channel the joining user may open: peer + funds locked by ``u``."""

    peer: Hashable
    locked: float

    def __post_init__(self) -> None:
        if self.locked < 0:
            raise InvalidParameter(f"locked funds must be >= 0, got {self.locked}")

    def budget_cost(self, params: ModelParameters) -> float:
        """Budget consumed: on-chain fee plus the locked coins themselves."""
        return params.onchain_cost + self.locked

    def utility_cost(self, params: ModelParameters) -> float:
        """Utility cost ``L_u(v, l) = C + r*l`` (opportunity cost, not principal)."""
        return params.channel_cost(self.locked)


class Strategy:
    """An immutable multiset of :class:`Action` objects.

    Supports the multiset semantics of the paper's Ω (repeated endpoints
    allowed). Equality and hashing are by multiset content, so strategies
    can key memoisation caches.
    """

    __slots__ = ("_actions", "_counter")

    def __init__(self, actions: Iterable[Action] = ()) -> None:
        ordered = sorted(actions, key=lambda a: (str(a.peer), a.locked))
        self._actions: Tuple[Action, ...] = tuple(ordered)
        self._counter = Counter(self._actions)

    # -- multiset protocol --------------------------------------------------

    def __iter__(self) -> Iterator[Action]:
        return iter(self._actions)

    def __len__(self) -> int:
        return len(self._actions)

    def __contains__(self, action: Action) -> bool:
        return self._counter[action] > 0

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Strategy):
            return NotImplemented
        return self._actions == other._actions

    def __hash__(self) -> int:
        return hash(self._actions)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        inner = ", ".join(f"({a.peer!r}, {a.locked})" for a in self._actions)
        return f"Strategy([{inner}])"

    # -- derived quantities ----------------------------------------------------

    @property
    def actions(self) -> Tuple[Action, ...]:
        return self._actions

    @property
    def peers(self) -> Tuple[Hashable, ...]:
        """Peers with multiplicity, in canonical order."""
        return tuple(action.peer for action in self._actions)

    def total_locked(self) -> float:
        return sum(action.locked for action in self._actions)

    def budget_cost(self, params: ModelParameters) -> float:
        """``Σ (C + l_j)`` — what the strategy draws from the budget."""
        return sum(action.budget_cost(params) for action in self._actions)

    def utility_cost(self, params: ModelParameters) -> float:
        """``Σ L_u(v, l)`` — the cost term of the utility function."""
        return sum(action.utility_cost(params) for action in self._actions)

    def check_budget(self, params: ModelParameters, budget: float) -> None:
        """Raise :class:`BudgetExceeded` when over budget."""
        cost = self.budget_cost(params)
        if cost > budget + 1e-9:
            raise BudgetExceeded(cost, budget)

    def fits_budget(self, params: ModelParameters, budget: float) -> bool:
        return self.budget_cost(params) <= budget + 1e-9

    # -- functional updates -------------------------------------------------------

    def with_action(self, action: Action) -> "Strategy":
        return Strategy(self._actions + (action,))

    def without_action(self, action: Action) -> "Strategy":
        if action not in self:
            raise InvalidParameter(f"{action!r} not in strategy")
        remaining = list(self._actions)
        remaining.remove(action)
        return Strategy(remaining)

    def replacing(self, old: Action, new: Action) -> "Strategy":
        return self.without_action(old).with_action(new)


class ActionSpace:
    """Builders for the candidate action set Ω of a joining user.

    All builders exclude the joining user itself from the candidate peers.
    """

    @staticmethod
    def fixed_lock(
        graph: ChannelGraph, new_user: Hashable, lock: float
    ) -> List[Action]:
        """Ω for Algorithm 1: every existing node, all with lock ``l1``."""
        if lock < 0:
            raise InvalidParameter(f"lock must be >= 0, got {lock}")
        return [Action(peer, lock) for peer in graph.nodes if peer != new_user]

    @staticmethod
    def discrete(
        graph: ChannelGraph,
        new_user: Hashable,
        budget: float,
        granularity: float,
        params: ModelParameters,
    ) -> List[Action]:
        """Ω for Algorithm 2: locks are multiples ``k*m`` affordable in budget.

        Includes ``k = 0`` (a channel with no extra locked funds) through
        the largest multiple such that ``C + k*m <= budget``.
        """
        if granularity <= 0:
            raise InvalidParameter(f"granularity must be > 0, got {granularity}")
        if budget < params.onchain_cost:
            return []
        max_units = int((budget - params.onchain_cost) / granularity)
        locks = [k * granularity for k in range(max_units + 1)]
        return [
            Action(peer, lock)
            for peer in graph.nodes
            if peer != new_user
            for lock in locks
        ]

    @staticmethod
    def max_channels(params: ModelParameters, budget: float, lock: float) -> int:
        """``M = floor(B_u / (C + l1))`` — channel count bound of Thm 4."""
        per_channel = params.onchain_cost + lock
        if per_channel <= 0:
            raise InvalidParameter("per-channel cost must be positive")
        return int(budget / per_channel)
