"""Pluggable channel cost models (Section II-C and future-work item 2).

The paper's baseline opportunity cost is linear, ``l_u = r * c_u``,
justified by "the non-specialized nature of the underlying coins". Its
conclusion lists "a more realistic cost model that takes into account
interest rates as in [17] (Guasoni et al.)" as future work, and Section
II-C notes the computational results survive such an extension — which
holds because any per-channel cost remains *modular* in the strategy.

This module provides that extension point:

* :class:`LinearOpportunityCost` — the paper's ``C + r*l``;
* :class:`DiscountedOpportunityCost` — Guasoni-style: locking ``l`` for a
  channel lifetime ``T`` at continuously-compounded rate ``ρ`` forgoes
  ``l * (e^{ρT} - 1)`` of interest, discounted back to present value
  ``l * (1 - e^{-ρT})``;
* :class:`AmortisedOnchainCost` — spreads the on-chain fee over expected
  channel lifetime against a per-period horizon, for utilities expressed
  per unit time.

All models expose ``channel_cost(locked)``; the joining-user model accepts
any of them via its ``cost_model`` argument.
"""

from __future__ import annotations

import abc
import math

from ..errors import InvalidParameter
from ..params import ModelParameters

__all__ = [
    "CostModel",
    "LinearOpportunityCost",
    "DiscountedOpportunityCost",
    "AmortisedOnchainCost",
]


class CostModel(abc.ABC):
    """Cost ``L_u(v, l)`` of one channel for one party."""

    @abc.abstractmethod
    def channel_cost(self, locked: float) -> float:
        """Total cost of a channel in which this party locks ``locked``."""

    def strategy_cost(self, locked_amounts) -> float:
        """Sum of channel costs — modular by construction."""
        return sum(self.channel_cost(l) for l in locked_amounts)


class LinearOpportunityCost(CostModel):
    """The paper's baseline: ``C + r * l``."""

    def __init__(self, onchain_cost: float, opportunity_rate: float) -> None:
        if onchain_cost < 0 or opportunity_rate < 0:
            raise InvalidParameter("costs must be >= 0")
        self.onchain_cost = onchain_cost
        self.opportunity_rate = opportunity_rate

    @classmethod
    def from_parameters(cls, params: ModelParameters) -> "LinearOpportunityCost":
        return cls(params.onchain_cost, params.opportunity_rate)

    def channel_cost(self, locked: float) -> float:
        if locked < 0:
            raise InvalidParameter("locked must be >= 0")
        return self.onchain_cost + self.opportunity_rate * locked


class DiscountedOpportunityCost(CostModel):
    """Interest-rate cost à la Guasoni et al. [17].

    Locking ``l`` coins for lifetime ``T`` at continuously-compounded
    interest ``ρ`` costs the present value of the forgone interest:

        opportunity(l) = l * (1 - e^{-ρT})

    which converges to the linear model for small ``ρT`` (rate ≈ ρT) and
    saturates at ``l`` for very long-lived channels (the entire principal's
    earning power is forgone).
    """

    def __init__(
        self, onchain_cost: float, interest_rate: float, lifetime: float
    ) -> None:
        if onchain_cost < 0 or interest_rate < 0 or lifetime < 0:
            raise InvalidParameter("cost parameters must be >= 0")
        self.onchain_cost = onchain_cost
        self.interest_rate = interest_rate
        self.lifetime = lifetime

    def channel_cost(self, locked: float) -> float:
        if locked < 0:
            raise InvalidParameter("locked must be >= 0")
        discount = 1.0 - math.exp(-self.interest_rate * self.lifetime)
        return self.onchain_cost + locked * discount

    def effective_linear_rate(self) -> float:
        """The ``r`` of the linear model this is equivalent to at l -> 0."""
        return 1.0 - math.exp(-self.interest_rate * self.lifetime)


class AmortisedOnchainCost(CostModel):
    """On-chain fee amortised per unit time over the channel lifetime.

    Useful when the utility is a *rate* (per unit time, as Eq. 3's revenue
    is) and costs should be comparable: a channel living ``lifetime``
    periods costs ``C / lifetime`` per period plus the linear opportunity
    rate on locked funds.
    """

    def __init__(
        self, onchain_cost: float, opportunity_rate: float, lifetime: float
    ) -> None:
        if onchain_cost < 0 or opportunity_rate < 0:
            raise InvalidParameter("costs must be >= 0")
        if lifetime <= 0:
            raise InvalidParameter("lifetime must be > 0")
        self.onchain_cost = onchain_cost
        self.opportunity_rate = opportunity_rate
        self.lifetime = lifetime

    def channel_cost(self, locked: float) -> float:
        if locked < 0:
            raise InvalidParameter("locked must be >= 0")
        return (
            self.onchain_cost / self.lifetime
            + self.opportunity_rate * locked
        )
