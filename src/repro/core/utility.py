"""The joining user's utility model (Section II-C).

:class:`JoiningUserModel` evaluates, for a new user ``u`` with candidate
strategy ``S``:

    U(S)   = E_rev(S) - E_fees(S) - Σ_{(v,l) in S} L_u(v, l)
    U'(S)  = E_rev(S) - E_fees(S)               (Thm 2's monotone part)
    U^b(S) = C_u + U(S)                         (Section III-D benefit)

Following the paper's submodularity proofs ("we assume λ_xy / p_trans are
fixed values"), the transaction distribution is *frozen* at construction:
pair probabilities are computed once on the base graph and held constant
while strategies vary. The equilibrium module re-derives distributions per
deviation instead (Section IV recomputes rank factors after each change).

The model mutates one internal working copy of the graph between
evaluations (cheap diffs), so a single instance is not thread-safe.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Dict, Hashable, Mapping, Optional, Union

from ..errors import InvalidParameter, NodeNotFound
from ..network.graph import ChannelGraph
from ..params import DEFAULT_PARAMS, ModelParameters
from ..transactions.distributions import (
    TransactionDistribution,
    UniformDistribution,
)
from ..transactions.ranking import rank_factors
from ..transactions.zipf import ModifiedZipf
from .costmodels import CostModel
from .fees_paid import expected_fees
from .revenue import expected_revenue
from .strategy import Action, Strategy

__all__ = ["JoiningUserModel"]


class JoiningUserModel:
    """Utility of a new user joining a PCN with a given strategy.

    Args:
        graph: the existing PCN; must *not* contain ``new_user``.
        new_user: identifier of the joining node.
        params: model scalars (``C``, ``r``, ``f_avg``, ``f^T_avg``, ``N``,
            ``N_u``, ``s``).
        distribution: ``p_trans`` among existing nodes; defaults to the
            paper's modified Zipf with ``params.zipf_s``.
        own_probs: ``p_trans(new_user, v)`` — the joining user's receiver
            distribution. Defaults to modified-Zipf rank factors over the
            base graph (or uniform when ``distribution`` is uniform).
        sender_rates: ``N_v`` per existing node; defaults to splitting
            ``params.total_tx_rate`` equally.
        hop_convention: fee distance convention, see
            :mod:`repro.core.fees_paid`.
        peer_deposit: coins the counterparty locks on its side of each new
            channel: a float, or ``"match"`` to mirror ``u``'s lock
            (dual-funded channel).
        routing_amount: when > 0, evaluate on the reduced subgraph that can
            carry this amount (Section II-B); makes locked capital matter.
        backend: ``"views"`` (default) evaluates revenue and fees on
            immutable CSR :class:`~repro.network.views.GraphView` snapshots
            (vectorised Brandes/BFS); ``"networkx"`` keeps the legacy
            dict-of-dict path — retained for parity tests and the
            old-vs-new perf benchmark.
        revenue_mode: how ``E_rev`` is computed.

            * ``"betweenness"`` (default) — exact pair-weighted intermediary
              betweenness of ``u`` in the augmented graph. Physically
              faithful, but **not** submodular: a second channel can create
              transit where one channel earns nothing, so marginal revenue
              can jump upward.
            * ``"fixed-rate"`` — the paper's Thm 1-5 assumption that
              "λ_xy is a fixed value": each candidate peer ``v`` gets a
              rate ``λ̂(v)`` estimated once (traffic on the directed edge
              ``u -> v`` when ``u`` is connected to *every* peer) and
              ``E_rev(S) = f_avg * Σ_{v in peers(S)} λ̂(v)`` is modular.
              This is the mode under which the submodularity/monotonicity
              theorems and the greedy guarantee hold exactly.
    """

    def __init__(
        self,
        graph: ChannelGraph,
        new_user: Hashable,
        params: ModelParameters = DEFAULT_PARAMS,
        distribution: Optional[TransactionDistribution] = None,
        own_probs: Optional[Mapping[Hashable, float]] = None,
        sender_rates: Optional[Mapping[Hashable, float]] = None,
        hop_convention: str = "path-length",
        peer_deposit: Union[float, str] = "match",
        routing_amount: float = 0.0,
        revenue_mode: str = "betweenness",
        cost_model: Optional["CostModel"] = None,
        backend: str = "views",
    ) -> None:
        if new_user in graph:
            raise InvalidParameter(
                f"new user {new_user!r} is already in the graph; "
                "JoiningUserModel models a node that has not joined yet"
            )
        if len(graph) < 1:
            raise InvalidParameter("base graph must have at least one node")
        if routing_amount < 0:
            raise InvalidParameter("routing_amount must be >= 0")
        if isinstance(peer_deposit, str) and peer_deposit != "match":
            raise InvalidParameter("peer_deposit must be a float or 'match'")
        if revenue_mode not in ("betweenness", "fixed-rate"):
            raise InvalidParameter(
                "revenue_mode must be 'betweenness' or 'fixed-rate', "
                f"got {revenue_mode!r}"
            )
        if backend not in ("views", "networkx"):
            raise InvalidParameter(
                f"backend must be 'views' or 'networkx', got {backend!r}"
            )

        self.base_graph = graph
        self.new_user = new_user
        self.params = params
        self.hop_convention = hop_convention
        self.peer_deposit = peer_deposit
        self.routing_amount = routing_amount
        self.revenue_mode = revenue_mode
        self.cost_model = cost_model
        self.backend = backend
        self._fixed_rates: Optional[Dict[Hashable, float]] = None

        if distribution is None:
            distribution = ModifiedZipf(graph, s=params.zipf_s)
        self.distribution = distribution

        # Freeze pair probabilities among existing nodes (paper's fixed
        # p_trans assumption for Thm 1-5). Senders the distribution does
        # not know about simply send nothing.
        self._pair_probs: Dict[Hashable, Dict[Hashable, float]] = {}
        for sender in graph.nodes:
            try:
                self._pair_probs[sender] = distribution.receivers(sender)
            except NodeNotFound:
                self._pair_probs[sender] = {}

        # Freeze the joining user's own receiver distribution.
        if own_probs is not None:
            total = sum(p for p in own_probs.values() if p > 0)
            if total <= 0:
                raise InvalidParameter("own_probs must have positive mass")
            self._own_probs = {
                v: p / total for v, p in own_probs.items() if p > 0
            }
        elif isinstance(distribution, UniformDistribution):
            n = len(graph)
            self._own_probs = {v: 1.0 / n for v in graph.nodes}
        else:
            factors = rank_factors(graph, perspective=None, s=params.zipf_s)
            total = sum(factors.values())
            self._own_probs = {v: f / total for v, f in factors.items()}
        for receiver in self._own_probs:
            if receiver not in graph:
                raise NodeNotFound(receiver)

        if sender_rates is None:
            per_node = params.total_tx_rate / len(graph)
            sender_rates = {v: per_node for v in graph.nodes}
        self._sender_rates = dict(sender_rates)

        # Working copy for cheap strategy diffs.
        self._work = graph.copy()
        self._work.add_node(new_user)
        self._applied: Dict[Action, list] = {}
        self._applied_counter: Counter = Counter()

        # Evaluation accounting (Thm 4/5 cost claims).
        self.stats = {"revenue_evals": 0, "fee_evals": 0, "graph_edits": 0}

    # -- strategy application --------------------------------------------------

    def _routing_view(self, graph: ChannelGraph):
        """The reduced directed view in the configured backend's form."""
        view = graph.view(directed=True, reduced=self.routing_amount)
        if self.backend == "views":
            return view
        return view.to_networkx()

    def _deposit_for(self, action: Action) -> float:
        if self.peer_deposit == "match":
            return action.locked
        return float(self.peer_deposit)

    def _apply(self, strategy: Strategy) -> None:
        """Mutate the working graph to reflect exactly ``strategy``."""
        target = Counter(strategy.actions)
        # Remove surplus channels.
        for action in list(self._applied_counter):
            surplus = self._applied_counter[action] - target.get(action, 0)
            for _ in range(surplus):
                channel_id = self._applied[action].pop()
                self._work.remove_channel(channel_id)
                self._applied_counter[action] -= 1
                self.stats["graph_edits"] += 1
            if self._applied_counter[action] == 0:
                del self._applied_counter[action]
                self._applied.pop(action, None)
        # Add missing channels.
        for action, count in target.items():
            missing = count - self._applied_counter.get(action, 0)
            if missing <= 0:
                continue
            if action.peer not in self.base_graph:
                raise NodeNotFound(action.peer)
            for _ in range(missing):
                channel = self._work.add_channel(
                    self.new_user,
                    action.peer,
                    action.locked,
                    self._deposit_for(action),
                )
                self._applied.setdefault(action, []).append(channel.channel_id)
                self._applied_counter[action] += 1
                self.stats["graph_edits"] += 1

    def with_strategy(self, strategy: Strategy) -> ChannelGraph:
        """A fresh, independent copy of the network with ``strategy`` applied."""
        graph = self.base_graph.copy()
        graph.add_node(self.new_user)
        for action in strategy:
            graph.add_channel(
                self.new_user, action.peer, action.locked, self._deposit_for(action)
            )
        return graph

    # -- utility components --------------------------------------------------------

    def _pair_weight(self, sender: Hashable, receiver: Hashable) -> float:
        if sender == self.new_user or receiver == self.new_user:
            return 0.0
        rate = self._sender_rates.get(sender, 0.0)
        if rate <= 0.0:
            return 0.0
        return rate * self._pair_probs.get(sender, {}).get(receiver, 0.0)

    def _estimate_fixed_rates(self) -> Dict[Hashable, float]:
        """``λ̂(v)``: rate on the directed edge ``u -> v`` when ``u`` is
        connected to every existing node (the fixed-λ estimate)."""
        if self._fixed_rates is not None:
            return self._fixed_rates
        full = self.base_graph.copy()
        full.add_node(self.new_user)
        nominal = max(self.routing_amount, 1.0)
        for peer in self.base_graph.nodes:
            full.add_channel(self.new_user, peer, nominal, nominal)
        digraph = self._routing_view(full)
        sources = [
            v for v in self.base_graph.nodes if self._sender_rates.get(v, 0) > 0
        ]
        from ..network.betweenness import pair_weighted_betweenness

        profile = pair_weighted_betweenness(
            digraph, self._pair_weight, sources=sources
        )
        self._fixed_rates = {
            peer: profile.edge_value(self.new_user, peer)
            for peer in self.base_graph.nodes
        }
        return self._fixed_rates

    def expected_revenue(self, strategy: Strategy) -> float:
        """``E_rev(S)`` — routing revenue per unit time (Eq. 3).

        See the class docstring for the two revenue modes.
        """
        self.stats["revenue_evals"] += 1
        if self.revenue_mode == "fixed-rate":
            rates = self._estimate_fixed_rates()
            peers = set()
            for action in strategy:
                if self.routing_amount > 0 and action.locked < self.routing_amount:
                    continue  # channel too thin to route the amount
                peers.add(action.peer)
            return self.params.fee_avg * sum(rates.get(p, 0.0) for p in peers)
        self._apply(strategy)
        digraph = self._routing_view(self._work)
        sources = [v for v in self.base_graph.nodes if self._sender_rates.get(v, 0) > 0]
        return expected_revenue(
            digraph,
            self.new_user,
            self._pair_weight,
            self.params.fee_avg,
            sources=sources,
        )

    def expected_fees(self, strategy: Strategy) -> float:
        """``E_fees(S)`` — fees paid for the user's own traffic."""
        self._apply(strategy)
        self.stats["fee_evals"] += 1
        digraph = self._routing_view(self._work)
        return expected_fees(
            digraph,
            self.new_user,
            self._own_probs,
            self.params.user_tx_rate,
            self.params.fee_out_avg,
            hop_convention=self.hop_convention,
        )

    def channel_costs(self, strategy: Strategy) -> float:
        """``Σ L_u(v, l)`` for the strategy.

        Uses the pluggable ``cost_model`` when one was supplied (e.g. the
        Guasoni-style :class:`~repro.core.costmodels.DiscountedOpportunityCost`);
        defaults to the paper's linear ``C + r*l`` from the parameters.
        """
        if self.cost_model is not None:
            return self.cost_model.strategy_cost(
                action.locked for action in strategy
            )
        return strategy.utility_cost(self.params)

    # -- objectives -----------------------------------------------------------------

    def utility(self, strategy: Strategy) -> float:
        """Full utility ``U(S)``; ``-inf`` when disconnected (Section II-C)."""
        fees = self.expected_fees(strategy)
        if math.isinf(fees):
            return -math.inf
        return self.expected_revenue(strategy) - fees - self.channel_costs(strategy)

    def simplified_utility(self, strategy: Strategy) -> float:
        """``U'(S) = E_rev - E_fees`` — the monotone submodular objective."""
        fees = self.expected_fees(strategy)
        if math.isinf(fees):
            return -math.inf
        return self.expected_revenue(strategy) - fees

    def benefit(self, strategy: Strategy) -> float:
        """``U^b(S) = C_u + U(S)`` (Section III-D)."""
        utility = self.utility(strategy)
        if math.isinf(utility):
            return -math.inf
        return self.params.onchain_alternative_cost() + utility

    def objective(self, strategy: Strategy, kind: str = "simplified") -> float:
        """Dispatch helper used by the optimisation algorithms."""
        if kind == "simplified":
            return self.simplified_utility(strategy)
        if kind == "utility":
            return self.utility(strategy)
        if kind == "benefit":
            return self.benefit(strategy)
        raise InvalidParameter(
            f"objective kind must be simplified/utility/benefit, got {kind!r}"
        )

    # -- introspection ---------------------------------------------------------------

    @property
    def own_probs(self) -> Dict[Hashable, float]:
        """The joining user's frozen receiver distribution."""
        return dict(self._own_probs)

    @property
    def sender_rates(self) -> Dict[Hashable, float]:
        return dict(self._sender_rates)

    def pair_probability(self, sender: Hashable, receiver: Hashable) -> float:
        """Frozen ``p_trans(sender, receiver)`` among existing nodes."""
        return self._pair_probs.get(sender, {}).get(receiver, 0.0)
