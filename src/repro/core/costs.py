"""Channel cost model (Section II-C) and the on-chain alternative cost.

For one party, a channel costs:

* ``C/2`` — its share of the opening transaction's miner fee;
* ``C/2`` — its *expected* share of the closing fee (the channel closes
  unilaterally-by-u, unilaterally-by-v, or collaboratively with equal
  probability, so each party expects to pay half on average);
* ``r * l`` — opportunity cost of the ``l`` coins locked for the channel
  lifetime (linear rate, the paper's standard economic assumption).

Total: ``L_u(v, l) = C + r*l``.

Section III-D additionally uses ``C_u = N_u * C / 2`` — the expected
on-chain cost if the user transacted purely on the blockchain — to shift
the utility into the non-negative *benefit function* ``U^b = C_u + U``.
"""

from __future__ import annotations


from ..params import ModelParameters
from .strategy import Strategy

__all__ = [
    "channel_cost",
    "strategy_cost",
    "onchain_alternative_cost",
    "benefit_positivity_condition",
]


def channel_cost(params: ModelParameters, locked: float) -> float:
    """``L_u(v, l) = C + r*l`` for one channel, one party."""
    return params.channel_cost(locked)


def strategy_cost(params: ModelParameters, strategy: Strategy) -> float:
    """``Σ_{(v,l) in S} L_u(v, l)``."""
    return strategy.utility_cost(params)


def onchain_alternative_cost(params: ModelParameters) -> float:
    """``C_u = N_u * C / 2`` (Section III-D)."""
    return params.onchain_alternative_cost()


def benefit_positivity_condition(
    params: ModelParameters,
    expected_fees: float,
    budget: float,
    max_single_channel_cost: float,
) -> bool:
    """Check the paper's sufficient condition for ``U^b`` to stay positive.

    Section III-D: the benefit function remains submodular and positive
    whenever channels satisfy ``E_fees + (B_u / C) * L_u(v, l) < C_u``.
    ``max_single_channel_cost`` should be the largest ``L_u(v, l)`` of any
    channel the optimiser may open.
    """
    bound = params.onchain_alternative_cost()
    lhs = expected_fees + (budget / params.onchain_cost) * max_single_channel_cost
    return lhs < bound
