"""Declarative scenario layer: the one public way to describe experiments.

Describe *what* to run as frozen-dataclass specs (or plain JSON), then let
:class:`ScenarioRunner` resolve the string keys against the plugin
registries and drive the library::

    from repro.scenarios import (
        AlgorithmSpec, Scenario, ScenarioRunner, TopologySpec,
    )

    scenario = Scenario(
        topology=TopologySpec("ba", {"n": 50}),
        algorithm=AlgorithmSpec("greedy", {"budget": 10.0, "lock": 1.0}),
        seed=7,
    )
    result = ScenarioRunner().run(scenario)
    print(result.optimisation.summary())

Sweeps evaluate a grid of dotted-path overrides, optionally across worker
processes::

    rows = ScenarioRunner().run_sweep(
        scenario,
        {"topology.params.n": [20, 50, 100]},
        executor="process",
    )

New topologies/algorithms/fees/workloads plug in via the
``register_*`` decorators — see :mod:`repro.scenarios.registry`.

Import-order note: this ``__init__`` eagerly exposes only the dependency
leaves (specs, registries, grid machinery) so provider modules can import
``repro.scenarios.registry`` at their own import time without a cycle; the
runner — which imports every builtin provider — loads lazily on first
attribute access (PEP 562).
"""

from typing import TYPE_CHECKING

from .grid import derive_seed, evaluate_grid, grid_points
from .registry import (
    ALGORITHMS,
    ATTACKS,
    CHURN,
    FEES,
    GROWTH,
    JoinAlgorithm,
    Registry,
    TOPOLOGIES,
    WORKLOADS,
    register_algorithm,
    register_attack,
    register_churn,
    register_fee,
    register_growth,
    register_topology,
    register_workload,
)
from .specs import (
    AlgorithmSpec,
    AttackSpec,
    ChurnSpec,
    EvolutionSpec,
    FeeSpec,
    GrowthSpec,
    Scenario,
    SimulationSpec,
    TopologySpec,
    WorkloadSpec,
)

if TYPE_CHECKING:  # pragma: no cover - lazy at runtime, eager for typing
    from .runner import (
        ScenarioResult,
        ScenarioRunner,
        build_batched_engine,
        build_churn,
        build_engine,
        build_fee,
        build_growth,
        build_simulation_engine,
        build_topology,
        build_workload,
    )

__all__ = [
    "ALGORITHMS",
    "ATTACKS",
    "AlgorithmSpec",
    "AttackSpec",
    "CHURN",
    "ChurnSpec",
    "EvolutionSpec",
    "FEES",
    "FeeSpec",
    "GROWTH",
    "GrowthSpec",
    "JoinAlgorithm",
    "Registry",
    "Scenario",
    "ScenarioResult",
    "ScenarioRunner",
    "SimulationSpec",
    "TOPOLOGIES",
    "TopologySpec",
    "WORKLOADS",
    "WorkloadSpec",
    "build_batched_engine",
    "build_churn",
    "build_engine",
    "build_fee",
    "build_growth",
    "build_simulation_engine",
    "build_topology",
    "build_workload",
    "derive_seed",
    "evaluate_grid",
    "grid_points",
    "register_algorithm",
    "register_attack",
    "register_churn",
    "register_fee",
    "register_growth",
    "register_topology",
    "register_workload",
]

_LAZY_RUNNER_EXPORTS = (
    "ScenarioResult",
    "ScenarioRunner",
    "build_batched_engine",
    "build_churn",
    "build_engine",
    "build_fee",
    "build_growth",
    "build_simulation_engine",
    "build_topology",
    "build_workload",
)


def __getattr__(name: str):
    if name in _LAZY_RUNNER_EXPORTS:
        from . import runner

        return getattr(runner, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__():
    return sorted(set(globals()) | set(_LAZY_RUNNER_EXPORTS))
