"""Spec -> object factories shared by every scenario execution path.

:class:`~repro.scenarios.runner.ScenarioRunner` and
:class:`~repro.attacks.runner.AttackRunner` both turn specs into live
objects — topology graphs, workloads, fee functions, simulation engines.
This module is the single place that resolution (including seed
handling) happens, so the two paths cannot drift apart: an attack
baseline is built by exactly the factory a plain simulation stage uses.

It lives below :mod:`repro.scenarios.runner` in the import graph (no
provider imports at module level — they load lazily on first build), so
:mod:`repro.attacks.runner` can import it directly without a cycle.
"""

from __future__ import annotations

import inspect
from typing import Any, Callable, Optional, Union

from ..errors import ScenarioError
from ..network.graph import ChannelGraph
from ..obs import ObsSession
from ..simulation.engine import SimulationEngine
from ..simulation.fastpath import BatchedSimulationEngine
from .registry import CHURN, FEES, GROWTH, TOPOLOGIES, WORKLOADS
from .specs import ChurnSpec, GrowthSpec, Scenario, TopologySpec, WorkloadSpec

__all__ = [
    "build_batched_engine",
    "build_churn",
    "build_engine",
    "build_fee",
    "build_growth",
    "build_simulation_engine",
    "build_topology",
    "build_workload",
]

_providers_loaded = False


def _ensure_providers() -> None:
    """Import the builtin provider modules (idempotent, lazy).

    Providers self-register into the plugin registries at import time;
    deferring the imports to first use keeps this module a dependency
    leaf, breaking the ``attacks.runner -> factory -> attacks.strategies``
    cycle that a module-level import would create.
    """
    global _providers_loaded
    if _providers_loaded:
        return
    _providers_loaded = True
    from ..attacks import strategies  # noqa: F401  (jamming, ...)
    from ..core import algorithms  # noqa: F401  (greedy, ...)
    from ..equilibrium import topologies  # noqa: F401  (star, path, ...)
    from ..evolution import churn  # noqa: F401  (uniform, degree-biased)
    from ..evolution import growth  # noqa: F401  (poisson, fixed, random-attach)
    from ..network import fees  # noqa: F401  (constant, linear, ...)
    from ..snapshots import io  # noqa: F401  (topology: file)
    from ..snapshots import synthetic  # noqa: F401  (ba, ...)
    from ..transactions import workload  # noqa: F401  (poisson)


def _accepts_keyword(fn: Callable[..., Any], name: str) -> bool:
    try:
        signature = inspect.signature(fn)
    except (TypeError, ValueError):  # pragma: no cover - builtins
        return False
    for parameter in signature.parameters.values():
        if parameter.kind is inspect.Parameter.VAR_KEYWORD:
            return True
        if parameter.name == name and parameter.kind in (
            inspect.Parameter.POSITIONAL_OR_KEYWORD,
            inspect.Parameter.KEYWORD_ONLY,
        ):
            return True
    return False


def build_topology(spec: TopologySpec, seed: Optional[int] = None) -> ChannelGraph:
    """Resolve and invoke a topology builder.

    The scenario ``seed`` is forwarded to builders that accept a ``seed``
    keyword (the synthetic snapshot generators) unless the spec's params
    already pin one; deterministic builders (star, path, file, ...) are
    called without it.
    """
    _ensure_providers()
    builder = TOPOLOGIES.get(spec.kind)
    params = dict(spec.params)
    if seed is not None and "seed" not in params and _accepts_keyword(builder, "seed"):
        params["seed"] = seed
    return builder(**params)


def build_workload(scenario: Scenario, graph: ChannelGraph) -> Any:
    """Resolve and invoke the scenario's workload builder on ``graph``.

    The scenario seed is injected unless the params pin one, so a given
    (scenario, graph) pair always produces the same transaction stream.
    """
    _ensure_providers()
    workload_spec = scenario.workload or WorkloadSpec("poisson")
    workload_builder = WORKLOADS.get(workload_spec.kind)
    workload_params = dict(workload_spec.params)
    workload_params.setdefault("seed", scenario.seed)
    try:
        return workload_builder(graph, **workload_params)
    except TypeError as exc:
        raise ScenarioError(
            f"workload {workload_spec.kind!r} rejected params "
            f"{workload_spec.params!r}: {exc}"
        ) from exc


def build_fee(scenario: Scenario) -> Optional[Any]:
    """Resolve the scenario's fee function (``None`` when unspecified).

    A spec with an upfront side (``upfront_base`` / ``upfront_rate`` > 0)
    resolves to a two-sided :class:`~repro.network.fees.FeePolicy`
    wrapping the success-fee builder's result; a success-only spec
    returns the bare fee function, exactly as before schema v2.
    """
    if scenario.fee is None:
        return None
    _ensure_providers()
    fee_builder = FEES.get(scenario.fee.kind)
    try:
        success = fee_builder(**scenario.fee.params)
    except TypeError as exc:
        raise ScenarioError(
            f"fee {scenario.fee.kind!r} rejected params "
            f"{scenario.fee.params!r}: {exc}"
        ) from exc
    if scenario.fee.has_upfront:
        from ..network.fees import FeePolicy

        return FeePolicy(
            success=success,
            upfront_base=scenario.fee.upfront_base,
            upfront_rate=scenario.fee.upfront_rate,
        )
    return success


def build_growth(spec: GrowthSpec) -> Any:
    """Resolve and invoke a growth (arrival-process) builder."""
    _ensure_providers()
    builder = GROWTH.get(spec.kind)
    try:
        return builder(**spec.params)
    except TypeError as exc:
        raise ScenarioError(
            f"growth {spec.kind!r} rejected params {spec.params!r}: {exc}"
        ) from exc


def build_churn(spec: ChurnSpec) -> Any:
    """Resolve and invoke a churn (departure-process) builder."""
    _ensure_providers()
    builder = CHURN.get(spec.kind)
    try:
        return builder(**spec.params)
    except TypeError as exc:
        raise ScenarioError(
            f"churn {spec.kind!r} rejected params {spec.params!r}: {exc}"
        ) from exc


def build_engine(
    scenario: Scenario,
    graph: ChannelGraph,
    obs: Optional[ObsSession] = None,
) -> SimulationEngine:
    """The event-driven :class:`SimulationEngine` for the scenario.

    ``obs`` is an execution-time concern, not part of the spec (it would
    perturb content hashes): the caller's instrumentation session is
    threaded through to the engine here.

    Raises:
        ScenarioError: when the scenario has no simulation section or
            selects a different backend (callers that need the shared
            event queue — e.g. the attack runner — use this to enforce
            backend="event" explicitly).
    """
    sim = scenario.simulation
    if sim is None:
        raise ScenarioError("scenario has no simulation section")
    if sim.backend != "event":
        raise ScenarioError(
            f"build_engine builds the event backend, but the scenario "
            f"selects backend={sim.backend!r}; use "
            "build_simulation_engine for backend dispatch"
        )
    return SimulationEngine(
        graph,
        fee=build_fee(scenario),
        fee_forwarding=sim.fee_forwarding,
        path_selection=sim.path_selection,
        seed=scenario.seed,
        payment_mode=sim.payment_mode,
        htlc_hold_mean=sim.htlc_hold_mean,
        route_rng=sim.route_rng,
        obs=obs,
    )


def build_batched_engine(
    scenario: Scenario,
    graph: ChannelGraph,
    obs: Optional[ObsSession] = None,
) -> BatchedSimulationEngine:
    """The batched :class:`BatchedSimulationEngine` for the scenario."""
    sim = scenario.simulation
    if sim is None:
        raise ScenarioError("scenario has no simulation section")
    return BatchedSimulationEngine(
        graph,
        fee=build_fee(scenario),
        fee_forwarding=sim.fee_forwarding,
        path_selection=sim.path_selection,
        seed=scenario.seed,
        payment_mode=sim.payment_mode,
        htlc_hold_mean=sim.htlc_hold_mean,
        route_rng=sim.route_rng,
        obs=obs,
    )


def build_simulation_engine(
    scenario: Scenario,
    graph: ChannelGraph,
    obs: Optional[ObsSession] = None,
) -> Union[SimulationEngine, BatchedSimulationEngine]:
    """The engine the scenario's ``backend`` selects."""
    sim = scenario.simulation
    if sim is None:
        raise ScenarioError("scenario has no simulation section")
    if sim.backend == "batched":
        return build_batched_engine(scenario, graph, obs=obs)
    return build_engine(scenario, graph, obs=obs)
