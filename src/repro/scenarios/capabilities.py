"""Backend capability negotiation: engines declare, specs validate.

Historically every place that cared about a backend's limits hard-coded
its name: ``SimulationSpec`` rejected ``backend="batched"`` with
``payment_mode="htlc"``, the attack runner demanded ``backend="event"``,
and the sharding runner special-cased the stream RNG. Each new backend
(or newly-grown feature of an existing one) then required editing every
check site.

This module inverts that: each engine *declares* an
:class:`EngineCapabilities` record, and validators consult the record
instead of the name. Adding a backend means registering one declaration;
growing a feature means flipping one flag next to the code that
implements it.

The declarations live here (a dependency leaf importable by the spec
layer) rather than on the engine classes themselves so that validating a
spec never imports numpy-heavy simulation modules; the engines re-export
their own record via a ``capabilities()`` classmethod for
introspection.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from ..errors import ScenarioError

__all__ = [
    "BACKEND_CAPABILITIES",
    "BATCHED_CAPABILITIES",
    "EVENT_CAPABILITIES",
    "EngineCapabilities",
    "backend_capabilities",
]


@dataclass(frozen=True)
class EngineCapabilities:
    """What one simulation backend can do.

    Attributes:
        backend: the backend's registry name (``SimulationSpec.backend``).
        payment_modes: supported ``SimulationSpec.payment_mode`` values.
        event_injection: whether external events (attack strategies,
            scheduled HTLC resolves) can be pushed into the engine's
            queue mid-run — required by attack stages.
        mid_run_topology: whether channel open/close events may mutate
            the graph while the engine is running.
        record_history: whether per-channel payment history recording is
            honoured during a run.
        parallel_channels: whether multigraph topologies (parallel
            channels between one node pair) are supported.
        stream_rng_shard_safe: whether ``route_rng="stream"`` results
            are invariant under trace sharding (no backend currently
            offers this; sharding requires payment-local RNG instead).
    """

    backend: str
    payment_modes: Tuple[str, ...]
    event_injection: bool = False
    mid_run_topology: bool = False
    record_history: bool = False
    parallel_channels: bool = False
    stream_rng_shard_safe: bool = False

    def supports_payment_mode(self, mode: str) -> bool:
        """Whether ``mode`` is one of the declared payment modes."""
        return mode in self.payment_modes


#: The discrete-event loop: the reference backend, everything goes.
EVENT_CAPABILITIES = EngineCapabilities(
    backend="event",
    payment_modes=("instant", "htlc"),
    event_injection=True,
    mid_run_topology=True,
    record_history=True,
    parallel_channels=True,
)

#: The vectorised fast path: array state frozen at run start, so no
#: mid-run topology changes, no history hooks, no parallel channels —
#: but both payment modes and (since the slot-aware HTLC adapter)
#: event injection for attack strategies.
BATCHED_CAPABILITIES = EngineCapabilities(
    backend="batched",
    payment_modes=("instant", "htlc"),
    event_injection=True,
)

#: Registry consulted by spec validation; new backends add a row here.
BACKEND_CAPABILITIES: Dict[str, EngineCapabilities] = {
    caps.backend: caps
    for caps in (EVENT_CAPABILITIES, BATCHED_CAPABILITIES)
}


def backend_capabilities(backend: str) -> EngineCapabilities:
    """The declared capabilities of ``backend``.

    Raises:
        ScenarioError: when no backend of that name is registered.
    """
    try:
        return BACKEND_CAPABILITIES[backend]
    except KeyError:
        known = sorted(BACKEND_CAPABILITIES)
        raise ScenarioError(
            f"unknown simulation backend {backend!r} (known: {known})"
        ) from None
