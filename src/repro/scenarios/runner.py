"""Execute declarative scenarios: the one engine behind CLI and sweeps.

:class:`ScenarioRunner` turns a :class:`~repro.scenarios.specs.Scenario`
into results by resolving each spec against the plugin registries and
driving the existing library layers in the canonical order:

1. **topology** — build the :class:`~repro.network.graph.ChannelGraph`;
2. **algorithm** — add the joining user and run the Section III optimiser;
3. **simulation** — attach the workload and fee, run the discrete-event
   simulator over the configured horizon.

``run`` returns a :class:`ScenarioResult` carrying both the live objects
(graph, optimisation result, metrics) and a flat, JSON/pickle-friendly
``row`` of headline numbers. ``run_sweep`` evaluates a parameter grid of
scenario overrides — serially or on a ``ProcessPoolExecutor`` — with
deterministic per-point seeds, so both executors produce identical rows.

Importing this module imports the builtin provider modules, which
self-register their plugins (see :mod:`repro.scenarios.registry`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import partial
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
)

# Imported for the side effect of registering the builtin plugins.
from ..attacks import strategies as _attack_strategies  # noqa: F401  (jamming, ...)
from ..core import algorithms as _algorithms  # noqa: F401  (greedy, ...)
from ..evolution import churn as _churn  # noqa: F401  (uniform, ...)
from ..evolution import growth as _growth  # noqa: F401  (poisson, ...)
from ..core.algorithms.common import OptimisationResult
from ..core.utility import JoiningUserModel
from ..equilibrium import topologies  # noqa: F401  (star, path, circle, ...)
from ..errors import ScenarioError
from ..network.graph import ChannelGraph
from ..network.views import GraphView
from ..params import ModelParameters
from ..simulation.metrics import SimulationMetrics
from ..snapshots import io as _snapshot_io  # noqa: F401  (topology: file)
from ..snapshots import synthetic  # noqa: F401  (topologies: ba, ...)
from ..transactions import workload as _workloads  # noqa: F401  (poisson)
from .factory import (  # noqa: F401  (re-exported: the historical home)
    build_batched_engine,
    build_churn,
    build_engine,
    build_fee,
    build_growth,
    build_simulation_engine,
    build_topology,
    build_workload,
)
from .grid import derive_seed, evaluate_grid
from .registry import ALGORITHMS
from .specs import Scenario, SimulationSpec

if TYPE_CHECKING:  # pragma: no cover - type hints only, avoids cycles
    from ..attacks.report import AttackReport
    from ..evolution.trajectory import Trajectory

__all__ = [
    "ScenarioResult",
    "ScenarioRunner",
    "build_batched_engine",
    "build_churn",
    "build_engine",
    "build_fee",
    "build_growth",
    "build_simulation_engine",
    "build_topology",
    "build_workload",
]


@dataclass
class ScenarioResult:
    """Everything one scenario execution produced.

    Attributes:
        scenario: the spec that was executed (with the seed actually used).
        row: flat mapping of headline numbers — plain JSON/pickle types
            only, so rows survive process boundaries and concatenate into
            sweep tables.
        graph: the (possibly mutated) channel graph.
        optimisation: present when the scenario had an ``algorithm``.
        metrics: present when the scenario had a ``simulation`` (under an
            ``attack``, these are the honest metrics of the attacked run).
        attack: the :class:`~repro.attacks.report.AttackReport` when the
            scenario had an ``attack`` section.
        baseline_metrics: the honest-baseline metrics of an attack run.
    """

    scenario: Scenario
    row: Dict[str, Any] = field(default_factory=dict)
    graph: Optional[ChannelGraph] = None
    optimisation: Optional[OptimisationResult] = None
    metrics: Optional[SimulationMetrics] = None
    #: Present when the scenario had an ``attack``: the damage accounting,
    #: the untouched baseline metrics (``metrics`` then holds the honest
    #: metrics of the *attacked* run).
    attack: Optional["AttackReport"] = None
    baseline_metrics: Optional[SimulationMetrics] = None
    #: Present when the scenario had an ``evolution`` stage: the full
    #: per-epoch trajectory (``graph`` then holds the evolved graph).
    evolution: Optional["Trajectory"] = None

    def view(self, directed: bool = True, reduced: float = 0.0) -> GraphView:
        """An immutable CSR snapshot of the (post-run) result graph.

        Downstream analysis can consume the array-form state directly —
        ``indptr``/``indices`` adjacency, per-entry balances/capacities —
        without materialising a networkx graph.

        Raises:
            ScenarioError: when the scenario produced no graph.
        """
        if self.graph is None:
            raise ScenarioError("scenario produced no graph to view")
        return self.graph.view(directed=directed, reduced=reduced)

    def summary(self) -> str:
        """One-line human-readable description of the headline numbers."""
        parts = [f"[{self.scenario.name}]"]
        if self.optimisation is not None:
            parts.append(self.optimisation.summary())
        if self.metrics is not None:
            parts.append(self.metrics.summary())
        if self.evolution is not None:
            parts.append(
                f"evolved {self.evolution.epochs_run} epochs "
                f"(converged={self.evolution.converged}, "
                f"final={self.evolution.final_topology})"
            )
        if len(parts) == 1 and self.graph is not None:
            parts.append(
                f"{len(self.graph)} nodes, {self.graph.num_channels()} channels"
            )
        return " ".join(parts)


class ScenarioRunner:
    """Executes scenarios and scenario sweeps.

    The runner is stateless between calls; every ``run`` builds a fresh
    graph from the spec, so repeated runs (and parallel sweep points) are
    independent and reproducible from the scenario seed alone.
    """

    def run(self, scenario: Scenario) -> ScenarioResult:
        """Execute every stage the scenario declares."""
        row: Dict[str, Any] = {
            "scenario": scenario.name,
            "seed": scenario.seed,
        }
        if scenario.attack is not None:
            # The attack stage subsumes the simulation stage — and builds
            # its own baseline/attacked graph pair, so don't build a
            # third topology here that would only be thrown away.
            from ..attacks.runner import AttackRunner

            outcome = AttackRunner().run(scenario)
            result = ScenarioResult(
                scenario=scenario,
                row=row,
                graph=outcome.graph,
                metrics=outcome.attacked_metrics,
                baseline_metrics=outcome.baseline_metrics,
                attack=outcome.report,
            )
            row.update(nodes=len(outcome.graph),
                       channels=outcome.graph.num_channels())
            self._simulation_columns(row, outcome.attacked_metrics)
            row.update(outcome.report.to_row())
            return result
        if scenario.evolution is not None:
            # The evolution stage owns topology construction too: its
            # engine mutates the graph across epochs, so the result's
            # graph is the *evolved* network, not the spec's topology.
            from ..evolution.runner import EvolutionRunner

            outcome = EvolutionRunner().run(scenario)
            result = ScenarioResult(
                scenario=scenario,
                row=row,
                graph=outcome.graph,
                evolution=outcome.trajectory,
            )
            row.update(nodes=len(outcome.graph),
                       channels=outcome.graph.num_channels())
            row.update(outcome.trajectory.row())
            return result
        graph = build_topology(scenario.topology, seed=scenario.seed)
        row.update(nodes=len(graph), channels=graph.num_channels())
        result = ScenarioResult(scenario=scenario, row=row, graph=graph)
        if scenario.algorithm is not None:
            result.optimisation = self._run_algorithm(scenario, graph)
            opt = result.optimisation
            row.update(
                algorithm=opt.algorithm,
                objective=opt.objective_value,
                utility=opt.utility,
                strategy_channels=len(opt.strategy),
                evaluations=opt.evaluations,
            )
        if scenario.simulation is not None:
            result.metrics = self._run_simulation(scenario, graph)
            self._simulation_columns(row, result.metrics)
        return result

    @staticmethod
    def _simulation_columns(row: Dict[str, Any], metrics: SimulationMetrics) -> None:
        row.update(
            attempted=metrics.attempted,
            succeeded=metrics.succeeded,
            failed=metrics.failed,
            success_rate=metrics.success_rate,
            volume_delivered=metrics.volume_delivered,
            total_revenue=sum(metrics.revenue.values()),
            horizon=metrics.horizon,
        )

    def _run_algorithm(
        self, scenario: Scenario, graph: ChannelGraph
    ) -> OptimisationResult:
        spec = scenario.algorithm
        assert spec is not None
        algorithm = ALGORITHMS.get(spec.kind)
        try:
            params = ModelParameters(**spec.model)
        except TypeError as exc:
            raise ScenarioError(
                f"invalid AlgorithmSpec.model overrides {spec.model!r}: {exc}"
            ) from exc
        model = JoiningUserModel(graph, spec.user, params)
        try:
            return algorithm(model, **spec.params)
        except TypeError as exc:
            raise ScenarioError(
                f"algorithm {spec.kind!r} rejected params "
                f"{spec.params!r}: {exc}"
            ) from exc

    def _run_simulation(
        self, scenario: Scenario, graph: ChannelGraph
    ) -> SimulationMetrics:
        sim: SimulationSpec = scenario.simulation  # type: ignore[assignment]
        workload = build_workload(scenario, graph)
        if sim.backend == "batched":
            engine = build_batched_engine(scenario, graph)
            return engine.run_trace(list(workload.generate(sim.horizon)))
        engine = build_engine(scenario, graph)
        engine.schedule_workload(workload, horizon=sim.horizon)
        return engine.run()

    def run_sweep(
        self,
        scenario: Scenario,
        grid: Mapping[str, Sequence[Any]],
        executor: str = "serial",
        max_workers: Optional[int] = None,
        progress: Optional[Callable[[int, Dict[str, Any]], None]] = None,
    ) -> List[Dict[str, Any]]:
        """Evaluate ``scenario`` across a grid of dotted-path overrides.

        Each grid key is a :meth:`Scenario.with_overrides` path (e.g.
        ``"topology.params.n"``, ``"algorithm.params.budget"``); each grid
        point is applied to a copy of the base scenario, which then runs
        with seed ``derive_seed(scenario.seed, index)`` — unless the grid
        itself sweeps ``"seed"``, which wins (and the degenerate empty
        grid keeps the scenario's own seed, so a one-row sweep agrees
        with ``run``). Rows merge the point's
        parameters with the scenario's result row and are returned in grid
        order for both executors, so ``executor="process"`` is a drop-in
        speedup for ``executor="serial"``.

        Args:
            scenario: the base scenario.
            grid: override path -> values.
            executor: ``"serial"`` or ``"process"``.
            max_workers: process-pool size (``"process"`` only).
            progress: optional ``(index, point)`` callback.
        """
        evaluate = partial(_evaluate_sweep_point, scenario.to_dict())
        return evaluate_grid(
            grid,
            evaluate,
            executor=executor,
            max_workers=max_workers,
            progress=progress,
        )


def _evaluate_sweep_point(
    scenario_doc: Dict[str, Any], index: int, point: Dict[str, Any]
) -> Dict[str, Any]:
    """Top-level (hence picklable) sweep-point evaluator."""
    base = Scenario.from_dict(scenario_doc)
    overrides = dict(point)
    if point:
        # Per-point seeds decorrelate the grid's RNG streams; the
        # degenerate empty grid keeps the scenario's own seed so a
        # one-row sweep reproduces `run-scenario` on the same file.
        overrides.setdefault("seed", derive_seed(base.seed, index))
    return ScenarioRunner().run(base.with_overrides(overrides)).row
