"""Execute declarative scenarios: the one engine behind CLI and sweeps.

:class:`ScenarioRunner` turns a :class:`~repro.scenarios.specs.Scenario`
into results by resolving each spec against the plugin registries and
driving the existing library layers in the canonical order:

1. **topology** — build the :class:`~repro.network.graph.ChannelGraph`;
2. **algorithm** — add the joining user and run the Section III optimiser;
3. **simulation** — attach the workload and fee, run the discrete-event
   simulator over the configured horizon.

``run`` returns a :class:`ScenarioResult` carrying both the live objects
(graph, optimisation result, metrics) and a flat, JSON/pickle-friendly
``row`` of headline numbers. ``run_sweep`` evaluates a parameter grid of
scenario overrides — serially or on a ``ProcessPoolExecutor`` — with
deterministic per-point seeds, so both executors produce identical rows.

Importing this module imports the builtin provider modules, which
self-register their plugins (see :mod:`repro.scenarios.registry`).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from functools import partial
from pathlib import Path
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Union,
)

# Imported for the side effect of registering the builtin plugins.
from ..attacks import strategies as _attack_strategies  # noqa: F401  (jamming, ...)
from ..core import algorithms as _algorithms  # noqa: F401  (greedy, ...)
from ..evolution import churn as _churn  # noqa: F401  (uniform, ...)
from ..evolution import growth as _growth  # noqa: F401  (poisson, ...)
from ..core.algorithms.common import OptimisationResult
from ..core.utility import JoiningUserModel
from ..equilibrium import topologies  # noqa: F401  (star, path, circle, ...)
from ..errors import ScenarioError
from ..network.graph import ChannelGraph
from ..network.views import GraphView
from ..obs import ObsSession, attach_telemetry, default_session
from ..params import ModelParameters
from ..simulation.metrics import SimulationMetrics
from ..snapshots import io as _snapshot_io  # noqa: F401  (topology: file)
from ..snapshots import synthetic  # noqa: F401  (topologies: ba, ...)
from ..transactions import workload as _workloads  # noqa: F401  (poisson)
from .factory import (  # noqa: F401  (re-exported: the historical home)
    build_batched_engine,
    build_churn,
    build_engine,
    build_fee,
    build_growth,
    build_simulation_engine,
    build_topology,
    build_workload,
)
from .grid import derive_seed, evaluate_grid
from .registry import ALGORITHMS
from .specs import Scenario, SimulationSpec

if TYPE_CHECKING:  # pragma: no cover - type hints only, avoids cycles
    from ..attacks.report import AttackReport
    from ..evolution.trajectory import Trajectory
    from ..service.store import ResultStore

#: Version stamp of the ``ScenarioResult.to_dict`` document layout.
RESULT_SCHEMA_VERSION = 1

__all__ = [
    "ScenarioResult",
    "ScenarioRunner",
    "resolve_sweep_point",
    "build_batched_engine",
    "build_churn",
    "build_engine",
    "build_fee",
    "build_growth",
    "build_simulation_engine",
    "build_topology",
    "build_workload",
]


@dataclass
class ScenarioResult:
    """Everything one scenario execution produced.

    Attributes:
        scenario: the spec that was executed (with the seed actually used).
        row: flat mapping of headline numbers — plain JSON/pickle types
            only, so rows survive process boundaries and concatenate into
            sweep tables.
        graph: the (possibly mutated) channel graph.
        optimisation: present when the scenario had an ``algorithm``.
        metrics: present when the scenario had a ``simulation`` (under an
            ``attack``, these are the honest metrics of the attacked run).
        attack: the :class:`~repro.attacks.report.AttackReport` when the
            scenario had an ``attack`` section.
        baseline_metrics: the honest-baseline metrics of an attack run.
    """

    scenario: Scenario
    row: Dict[str, Any] = field(default_factory=dict)
    graph: Optional[ChannelGraph] = None
    optimisation: Optional[OptimisationResult] = None
    metrics: Optional[SimulationMetrics] = None
    #: Present when the scenario had an ``attack``: the damage accounting,
    #: the untouched baseline metrics (``metrics`` then holds the honest
    #: metrics of the *attacked* run).
    attack: Optional["AttackReport"] = None
    baseline_metrics: Optional[SimulationMetrics] = None
    #: Present when the scenario had an ``evolution`` stage: the full
    #: per-epoch trajectory (``graph`` then holds the evolved graph).
    evolution: Optional["Trajectory"] = None

    def view(self, directed: bool = True, reduced: float = 0.0) -> GraphView:
        """An immutable CSR snapshot of the (post-run) result graph.

        Downstream analysis can consume the array-form state directly —
        ``indptr``/``indices`` adjacency, per-entry balances/capacities —
        without materialising a networkx graph.

        Raises:
            ScenarioError: when the scenario produced no graph.
        """
        if self.graph is None:
            raise ScenarioError("scenario produced no graph to view")
        return self.graph.view(directed=directed, reduced=reduced)

    def to_dict(self) -> Dict[str, Any]:
        """A plain-JSON document of everything the run produced.

        The graph serialises as a describegraph snapshot (node ids
        coerced to strings, the snapshot layer's convention), metrics and
        reports through their own schema-versioned ``to_dict`` forms.
        The document is the store payload of the scenario service:
        ``to_dict(from_dict(doc)) == doc`` holds for every stored doc,
        which is what the byte-identical cache-hit guarantee rests on.
        """
        metrics = self.metrics.to_dict() if self.metrics is not None else None
        baseline = (
            self.baseline_metrics.to_dict()
            if self.baseline_metrics is not None else None
        )
        return {
            "schema_version": RESULT_SCHEMA_VERSION,
            "scenario": self.scenario.to_dict(),
            "row": _plain(self.row),
            "graph": (
                _snapshot_io.to_describegraph(self.graph)
                if self.graph is not None else None
            ),
            "optimisation": (
                self.optimisation.to_dict()
                if self.optimisation is not None else None
            ),
            "metrics": metrics,
            "attack": self.attack.to_dict() if self.attack is not None else None,
            "baseline_metrics": baseline,
            "evolution": (
                self.evolution.to_dict() if self.evolution is not None else None
            ),
        }

    @classmethod
    def from_dict(cls, document: Mapping[str, Any]) -> "ScenarioResult":
        """Rebuild a result from a :meth:`to_dict` document."""
        from ..attacks.report import AttackReport
        from ..evolution.trajectory import Trajectory

        if not isinstance(document, Mapping):
            raise ScenarioError(
                f"ScenarioResult document must be a mapping, "
                f"got {type(document).__name__}"
            )
        version = document.get("schema_version", RESULT_SCHEMA_VERSION)
        if version != RESULT_SCHEMA_VERSION:
            raise ScenarioError(
                f"unsupported ScenarioResult schema_version {version!r}"
            )

        def section(key: str, parse: Callable[[Any], Any]) -> Any:
            raw = document.get(key)
            return None if raw is None else parse(raw)

        return cls(
            scenario=Scenario.from_dict(document["scenario"]),
            row=dict(document.get("row", {})),
            graph=section("graph", _snapshot_io.from_describegraph),
            optimisation=section("optimisation", OptimisationResult.from_dict),
            metrics=section("metrics", SimulationMetrics.from_dict),
            attack=section("attack", AttackReport.from_dict),
            baseline_metrics=section(
                "baseline_metrics", SimulationMetrics.from_dict
            ),
            evolution=section("evolution", Trajectory.from_dict),
        )

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ScenarioResult":
        try:
            document = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ScenarioError(f"invalid result JSON: {exc}") from exc
        return cls.from_dict(document)

    def summary(self) -> str:
        """One-line human-readable description of the headline numbers."""
        parts = [f"[{self.scenario.name}]"]
        if self.optimisation is not None:
            parts.append(self.optimisation.summary())
        if self.metrics is not None:
            parts.append(self.metrics.summary())
        if self.evolution is not None:
            parts.append(
                f"evolved {self.evolution.epochs_run} epochs "
                f"(converged={self.evolution.converged}, "
                f"final={self.evolution.final_topology})"
            )
        if len(parts) == 1 and self.graph is not None:
            parts.append(
                f"{len(self.graph)} nodes, {self.graph.num_channels()} channels"
            )
        return " ".join(parts)


class ScenarioRunner:
    """Executes scenarios and scenario sweeps.

    The runner is stateless between calls; every ``run`` builds a fresh
    graph from the spec, so repeated runs (and parallel sweep points) are
    independent and reproducible from the scenario seed alone.

    ``obs`` is the run's instrumentation session (phases, counters,
    traces); it defaults to the process session, which is disabled — and
    therefore free — unless ``REPRO_OBS`` is set. Instrumentation never
    influences results: obs-on and obs-off runs are bit-identical.
    """

    def __init__(self, obs: Optional[ObsSession] = None) -> None:
        self._obs = obs if obs is not None else default_session()

    def run(self, scenario: Scenario) -> ScenarioResult:
        """Execute every stage the scenario declares."""
        obs = self._obs
        row: Dict[str, Any] = {
            "scenario": scenario.name,
            "seed": scenario.seed,
        }
        if scenario.attack is not None:
            # The attack stage subsumes the simulation stage — and builds
            # its own baseline/attacked graph pair, so don't build a
            # third topology here that would only be thrown away.
            from ..attacks.runner import AttackRunner

            outcome = AttackRunner(obs=obs).run(scenario)
            result = ScenarioResult(
                scenario=scenario,
                row=row,
                graph=outcome.graph,
                metrics=outcome.attacked_metrics,
                baseline_metrics=outcome.baseline_metrics,
                attack=outcome.report,
            )
            row.update(nodes=len(outcome.graph),
                       channels=outcome.graph.num_channels())
            self._simulation_columns(row, outcome.attacked_metrics)
            row.update(outcome.report.to_row())
            return self._finalize(result)
        if scenario.evolution is not None:
            # The evolution stage owns topology construction too: its
            # engine mutates the graph across epochs, so the result's
            # graph is the *evolved* network, not the spec's topology.
            from ..evolution.runner import EvolutionRunner

            outcome = EvolutionRunner(obs=obs).run(scenario)
            result = ScenarioResult(
                scenario=scenario,
                row=row,
                graph=outcome.graph,
                evolution=outcome.trajectory,
            )
            row.update(nodes=len(outcome.graph),
                       channels=outcome.graph.num_channels())
            row.update(outcome.trajectory.row())
            return self._finalize(result)
        with obs.phase("topology"):
            graph = build_topology(scenario.topology, seed=scenario.seed)
        row.update(nodes=len(graph), channels=graph.num_channels())
        result = ScenarioResult(scenario=scenario, row=row, graph=graph)
        if scenario.algorithm is not None:
            with obs.phase("algorithm"):
                result.optimisation = self._run_algorithm(scenario, graph)
            opt = result.optimisation
            row.update(
                algorithm=opt.algorithm,
                objective=opt.objective_value,
                utility=opt.utility,
                strategy_channels=len(opt.strategy),
                evaluations=opt.evaluations,
            )
        if scenario.simulation is not None:
            result.metrics = self._run_simulation(scenario, graph)
            self._simulation_columns(row, result.metrics)
        return self._finalize(result)

    def _finalize(self, result: ScenarioResult) -> ScenarioResult:
        """Attach the run's telemetry to the result and its artifacts.

        The attachment is a side channel (``telemetry_of`` reads it back);
        the artifacts' ``to_dict`` documents — and therefore content
        hashes and store payloads — are untouched.
        """
        obs = self._obs
        if not obs.enabled:
            return result
        telemetry = obs.build_telemetry()
        attach_telemetry(result, telemetry)
        for artifact in (result.metrics, result.baseline_metrics,
                         result.attack, result.evolution):
            if artifact is not None:
                attach_telemetry(artifact, telemetry)
        return result

    @staticmethod
    def _simulation_columns(row: Dict[str, Any], metrics: SimulationMetrics) -> None:
        row.update(
            attempted=metrics.attempted,
            succeeded=metrics.succeeded,
            failed=metrics.failed,
            success_rate=metrics.success_rate,
            volume_delivered=metrics.volume_delivered,
            total_revenue=sum(metrics.revenue.values()),
            horizon=metrics.horizon,
        )

    def _run_algorithm(
        self, scenario: Scenario, graph: ChannelGraph
    ) -> OptimisationResult:
        spec = scenario.algorithm
        assert spec is not None
        algorithm = ALGORITHMS.get(spec.kind)
        try:
            params = ModelParameters(**spec.model)
        except TypeError as exc:
            raise ScenarioError(
                f"invalid AlgorithmSpec.model overrides {spec.model!r}: {exc}"
            ) from exc
        model = JoiningUserModel(graph, spec.user, params)
        try:
            return algorithm(model, **spec.params)
        except TypeError as exc:
            raise ScenarioError(
                f"algorithm {spec.kind!r} rejected params "
                f"{spec.params!r}: {exc}"
            ) from exc

    def _run_simulation(
        self, scenario: Scenario, graph: ChannelGraph
    ) -> SimulationMetrics:
        sim: SimulationSpec = scenario.simulation  # type: ignore[assignment]
        obs = self._obs
        with obs.phase("workload"):
            workload = build_workload(scenario, graph)
        if sim.backend == "batched":
            engine = build_batched_engine(scenario, graph, obs=obs)
            with obs.phase("simulate"):
                return engine.run_trace(list(workload.generate(sim.horizon)))
        engine = build_engine(scenario, graph, obs=obs)
        engine.schedule_workload(workload, horizon=sim.horizon)
        with obs.phase("simulate"):
            return engine.run()

    def run_sweep(
        self,
        scenario: Scenario,
        grid: Mapping[str, Sequence[Any]],
        executor: str = "serial",
        max_workers: Optional[int] = None,
        progress: Optional[Callable[[int, Dict[str, Any]], None]] = None,
        cache: Optional[Union["ResultStore", str, Path]] = None,
    ) -> List[Dict[str, Any]]:
        """Evaluate ``scenario`` across a grid of dotted-path overrides.

        Each grid key is a :meth:`Scenario.with_overrides` path (e.g.
        ``"topology.params.n"``, ``"algorithm.params.budget"``); each grid
        point is applied to a copy of the base scenario, which then runs
        with seed ``derive_seed(scenario.seed, index)`` — unless the grid
        itself sweeps ``"seed"``, which wins (and the degenerate empty
        grid keeps the scenario's own seed, so a one-row sweep agrees
        with ``run``). Rows merge the point's
        parameters with the scenario's result row and are returned in grid
        order for both executors, so ``executor="process"`` is a drop-in
        speedup for ``executor="serial"``.

        With ``cache`` set, every point is content-addressed through the
        result store (:mod:`repro.service.store`): a point whose resolved
        scenario hash is already stored is **not executed** — its row
        comes from the stored result document — and every computed point
        is written back. Rows are identical to the uncached path either
        way (modulo JSON number normalisation on cache hits), and the
        store's atomic writes make ``executor="process"`` safe to share
        one cache directory across workers.

        Args:
            scenario: the base scenario.
            grid: override path -> values.
            executor: ``"serial"`` or ``"process"``.
            max_workers: process-pool size (``"process"`` only).
            progress: optional ``(index, point)`` callback.
            cache: a :class:`~repro.service.store.ResultStore`, a store
                path, or ``None`` (no caching).
        """
        if cache is None:
            evaluate = partial(_evaluate_sweep_point, scenario.to_dict())
        else:
            from ..service.store import ResultStore

            store = ResultStore.open(cache)
            # Pass the store by path, not by object: each worker process
            # re-opens it, and atomic tmp+rename writes keep concurrent
            # writers of one directory safe.
            evaluate = partial(
                _evaluate_sweep_point_cached,
                scenario.to_dict(),
                str(store.root),
            )
        return evaluate_grid(
            grid,
            evaluate,
            executor=executor,
            max_workers=max_workers,
            progress=progress,
        )


def resolve_sweep_point(
    scenario_doc: Mapping[str, Any], index: int, point: Mapping[str, Any]
) -> Scenario:
    """The exact scenario grid point ``index`` executes.

    Shared by every sweep driver — the in-process executors, the
    cache-aware path, and the ``repro serve`` daemon's ``sweep``
    command — so all of them agree on the resolved spec and therefore on
    its content hash.
    """
    base = Scenario.from_dict(scenario_doc)
    overrides = dict(point)
    if point:
        # Per-point seeds decorrelate the grid's RNG streams; the
        # degenerate empty grid keeps the scenario's own seed so a
        # one-row sweep reproduces `run-scenario` on the same file.
        overrides.setdefault("seed", derive_seed(base.seed, index))
    return base.with_overrides(overrides)


def _evaluate_sweep_point(
    scenario_doc: Dict[str, Any], index: int, point: Dict[str, Any]
) -> Dict[str, Any]:
    """Top-level (hence picklable) sweep-point evaluator."""
    return ScenarioRunner().run(resolve_sweep_point(scenario_doc, index, point)).row


def _evaluate_sweep_point_cached(
    scenario_doc: Dict[str, Any],
    store_root: str,
    index: int,
    point: Dict[str, Any],
) -> Dict[str, Any]:
    """Cache-aware sweep-point evaluator (top-level, picklable).

    Store hit: the row comes from the stored result document, zero
    execution. Miss: run, write the full result document back, return
    the freshly computed row.
    """
    from ..service.store import ResultStore

    resolved = resolve_sweep_point(scenario_doc, index, point)
    store = ResultStore(store_root)
    key = resolved.content_hash()
    payload = store.get(key)
    if payload is not None:
        return dict(payload["row"])
    result = ScenarioRunner().run(resolved)
    # Return the *normalised* row put() hands back (sorted keys, ints
    # collapsed), so miss and hit responses are byte-identical.
    stored = store.put(key, result.to_dict())
    return dict(stored["row"])


def _plain(value: Any) -> Any:
    """Coerce ``value`` to plain JSON types (numpy scalars included)."""
    if isinstance(value, dict):
        return {str(key): _plain(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_plain(item) for item in value]
    if isinstance(value, (bool, int, float, str)) or value is None:
        return value
    item = getattr(value, "item", None)
    if callable(item):
        return item()
    return str(value)
