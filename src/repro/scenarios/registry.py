"""String-keyed plugin registries behind the declarative scenario layer.

A :class:`Scenario <repro.scenarios.specs.Scenario>` names its pieces by
string keys — ``TopologySpec(kind="ba")``, ``AlgorithmSpec(kind="greedy")``
— and the registries here resolve those keys to the callables that build
them. Provider modules self-register at import time::

    from repro.scenarios.registry import register_topology

    @register_topology("ba")
    def barabasi_albert_snapshot(n, ...):
        ...

This module is a dependency leaf (it imports nothing from the library but
:mod:`repro.errors`), so any provider module may import it without creating
an import cycle. :mod:`repro.scenarios.runner` imports the provider
packages, which guarantees the builtin plugins are registered before a
scenario is resolved.

Plugin calling conventions:

* **topology** — ``builder(**params) -> ChannelGraph``; builders that
  accept a ``seed`` keyword receive the scenario seed automatically.
* **algorithm** — the :class:`JoinAlgorithm` protocol:
  ``algorithm(model, **params) -> OptimisationResult``.
* **fee** — ``builder(**params) -> FeeFunction``.
* **workload** — ``builder(graph, seed=..., **params) -> PoissonWorkload``
  (or any object with the workload's ``generate`` interface).
"""

from __future__ import annotations

from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    Iterator,
    Protocol,
    TypeVar,
    runtime_checkable,
)

from ..errors import ScenarioError, UnknownPluginError

if TYPE_CHECKING:  # pragma: no cover - type hints only, avoids cycles
    from ..core.algorithms.common import OptimisationResult
    from ..core.utility import JoiningUserModel

__all__ = [
    "ALGORITHMS",
    "ATTACKS",
    "CHURN",
    "FEES",
    "GROWTH",
    "JoinAlgorithm",
    "Registry",
    "TOPOLOGIES",
    "WORKLOADS",
    "register_algorithm",
    "register_attack",
    "register_churn",
    "register_fee",
    "register_growth",
    "register_topology",
    "register_workload",
]

F = TypeVar("F", bound=Callable[..., Any])


@runtime_checkable
class JoinAlgorithm(Protocol):
    """Common protocol of the Section III joining-strategy optimisers.

    Every registered algorithm takes the joining-user model as its first
    positional argument plus algorithm-specific keyword arguments (budget,
    lock, granularity, ...), and returns an
    :class:`~repro.core.algorithms.common.OptimisationResult`.
    """

    def __call__(
        self, model: "JoiningUserModel", **kwargs: Any
    ) -> "OptimisationResult": ...


class Registry:
    """A named mapping from string keys to plugin callables.

    Args:
        name: human-readable registry name, used in error messages
            (``"topology"``, ``"algorithm"``, ...).
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self._plugins: Dict[str, Callable[..., Any]] = {}

    def register(self, key: str, *aliases: str) -> Callable[[F], F]:
        """Decorator: register the wrapped callable under ``key``.

        Registration is idempotent for the same callable (so re-imports
        are harmless) but re-registering a key to a *different* callable
        raises, catching accidental collisions between plugins.
        """

        def decorator(fn: F) -> F:
            for k in (key, *aliases):
                existing = self._plugins.get(k)
                if existing is not None and existing is not fn:
                    raise ScenarioError(
                        f"{self.name} key {k!r} already registered "
                        f"to {existing!r}"
                    )
                self._plugins[k] = fn
            return fn

        return decorator

    def get(self, key: str) -> Callable[..., Any]:
        """Resolve ``key``, raising :class:`UnknownPluginError` if absent."""
        try:
            return self._plugins[key]
        except KeyError:
            raise UnknownPluginError(self.name, key, self._plugins) from None

    def __contains__(self, key: str) -> bool:
        return key in self._plugins

    def __iter__(self) -> Iterator[str]:
        return iter(sorted(self._plugins))

    def __len__(self) -> int:
        return len(self._plugins)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Registry({self.name!r}, keys={sorted(self._plugins)})"


#: Topology builders: key -> ``(**params) -> ChannelGraph``.
TOPOLOGIES = Registry("topology")
#: Joining-strategy optimisers satisfying :class:`JoinAlgorithm`.
ALGORITHMS = Registry("algorithm")
#: Fee-function builders: key -> ``(**params) -> FeeFunction``.
FEES = Registry("fee")
#: Workload builders: key -> ``(graph, seed=..., **params) -> workload``.
WORKLOADS = Registry("workload")
#: Attack-strategy builders: key -> ``(**params) -> AttackStrategy``
#: (see :mod:`repro.attacks.strategies` for the protocol and builtins).
ATTACKS = Registry("attack")
#: Arrival-process builders for network evolution:
#: key -> ``(**params) -> ArrivalProcess``
#: (see :mod:`repro.evolution.growth` for the protocol and builtins).
GROWTH = Registry("growth")
#: Departure-process builders for network evolution:
#: key -> ``(**params) -> ChurnProcess``
#: (see :mod:`repro.evolution.churn`).
CHURN = Registry("churn")

register_topology = TOPOLOGIES.register
register_algorithm = ALGORITHMS.register
register_fee = FEES.register
register_workload = WORKLOADS.register
register_attack = ATTACKS.register
register_growth = GROWTH.register
register_churn = CHURN.register
