"""Grid expansion and serial/process-parallel grid evaluation.

The cartesian-product machinery that used to live in
:mod:`repro.analysis.sweeps` now lives here so both the generic sweep
driver (callable per point) and the scenario runner (scenario per point)
share one implementation — including the ``ProcessPoolExecutor`` path.

This module is a dependency leaf (stdlib + :mod:`repro.errors` only), so
anything in the library can import it without cycles.
"""

from __future__ import annotations

import hashlib
from concurrent.futures import ProcessPoolExecutor
from itertools import product
from typing import (
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
)

from ..errors import ScenarioError

__all__ = ["EXECUTORS", "derive_seed", "evaluate_grid", "grid_points"]

#: Supported ``executor`` values for grid evaluation.
EXECUTORS = ("serial", "process")


def grid_points(grid: Mapping[str, Sequence[Any]]) -> Iterator[Dict[str, Any]]:
    """Yield every combination of the grid as a dict.

    Iteration order is deterministic: keys in insertion order, values in
    the order given.
    """
    keys = list(grid)
    for values in product(*(grid[k] for k in keys)):
        yield dict(zip(keys, values))


def derive_seed(base: int, index: int) -> int:
    """Deterministic per-point seed: hash of ``(base, index)``.

    Grid point ``index`` always gets the same seed for a given base seed,
    independent of executor, worker count, or scheduling order — the
    property that makes ``executor="process"`` row-for-row identical to
    ``executor="serial"``. Hashing (rather than ``base + index``) keeps
    neighbouring points' RNG streams uncorrelated.
    """
    digest = hashlib.sha256(f"{base}:{index}".encode("ascii")).digest()
    return int.from_bytes(digest[:4], "big") % (2**31)


def evaluate_grid(
    grid: Mapping[str, Sequence[Any]],
    evaluate: Callable[[int, Dict[str, Any]], Mapping[str, Any]],
    executor: str = "serial",
    max_workers: Optional[int] = None,
    progress: Optional[Callable[[int, Dict[str, Any]], None]] = None,
) -> List[Dict[str, Any]]:
    """Evaluate ``evaluate(index, point)`` on every grid point.

    The returned rows merge each point's parameters with its results
    (results win on name clashes) and are ordered like
    :func:`grid_points` regardless of executor.

    Args:
        grid: parameter name -> values.
        evaluate: called with ``(index, point)``; must return a mapping of
            result columns. For ``executor="process"`` it must be a
            picklable top-level callable.
        executor: ``"serial"`` or ``"process"`` (a
            ``ProcessPoolExecutor`` over the grid points).
        max_workers: process-pool size (``"process"`` only; default lets
            the pool pick).
        progress: optional callback ``(index, point)``. Called before each
            evaluation when serial; called as results arrive (still in
            index order) when process-parallel.
    """
    if executor not in EXECUTORS:
        raise ScenarioError(
            f"executor must be one of {EXECUTORS}, got {executor!r}"
        )
    points = list(grid_points(grid))
    if executor == "serial":
        results = []
        for index, point in enumerate(points):
            if progress is not None:
                progress(index, point)
            results.append(evaluate(index, point))
    else:
        with ProcessPoolExecutor(max_workers=max_workers) as pool:
            futures = pool.map(evaluate, range(len(points)), points)
            results = []
            for index, result in enumerate(futures):
                if progress is not None:
                    progress(index, points[index])
                results.append(result)
    rows: List[Dict[str, Any]] = []
    for point, result in zip(points, results):
        row = dict(point)
        row.update(result)
        rows.append(row)
    return rows
