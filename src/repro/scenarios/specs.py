"""Declarative, JSON-round-trippable experiment specifications.

Every experiment in the paper has the same shape: build a topology, attach
a workload and a fee model, run an optimisation algorithm and/or the
discrete-event simulator, collect result rows. The frozen dataclasses here
describe that shape as *data*:

* :class:`TopologySpec` — which graph to build (``"ba"``, ``"star"``,
  ``"file"``, ...) and with what parameters;
* :class:`WorkloadSpec` — the payment-intent process;
* :class:`FeeSpec` — the global fee function;
* :class:`AlgorithmSpec` — the joining-strategy optimiser, the joining
  user's id, and :class:`~repro.params.ModelParameters` overrides;
* :class:`SimulationSpec` — discrete-event simulator settings;
* :class:`Scenario` — the composition of the above plus a name and seed.

All specs round-trip losslessly through plain JSON types::

    Scenario.from_dict(scenario.to_dict()) == scenario

``params`` mappings are normalised to JSON form at construction time
(tuples become lists, keys become strings), so equality after a JSON
round-trip holds by construction; non-JSON-serialisable values raise
:class:`~repro.errors.ScenarioError` immediately rather than at save time.

The string ``kind`` keys are resolved against the plugin registries of
:mod:`repro.scenarios.registry` by the runner — specs themselves never
import the heavyweight provider modules, so they stay cheap to construct,
hash-free to compare, and trivially picklable for process-parallel sweeps.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, fields
from typing import Any, Dict, Mapping, Optional

from ..errors import ScenarioError
from .capabilities import backend_capabilities

__all__ = [
    "AlgorithmSpec",
    "AttackSpec",
    "ChurnSpec",
    "EvolutionSpec",
    "FeeSpec",
    "GrowthSpec",
    "Scenario",
    "SimulationSpec",
    "TopologySpec",
    "WorkloadSpec",
]

#: ``to_dict`` documents carry this so future layouts can be migrated.
#: v2 added the two-sided fee fields (``FeeSpec.upfront_base`` /
#: ``upfront_rate``); v1 documents migrate automatically (both default
#: to 0.0, reproducing the success-only behaviour bit for bit).
SCHEMA_VERSION = 2

#: Document versions :meth:`Scenario.from_dict` accepts.
_READABLE_SCHEMA_VERSIONS = (1, 2)


def _jsonify(value: Any, what: str) -> Any:
    """Normalise ``value`` to plain JSON types (dicts/lists/scalars)."""
    try:
        return json.loads(json.dumps(value))
    except (TypeError, ValueError) as exc:
        raise ScenarioError(f"{what} must be JSON-serialisable: {exc}") from exc


def _require_mapping(document: Any, what: str) -> Mapping[str, Any]:
    if not isinstance(document, Mapping):
        raise ScenarioError(
            f"{what} must be a mapping, got {type(document).__name__}"
        )
    return document


@dataclass(frozen=True)
class _PluginSpec:
    """Common shape of the plugin-backed specs: a registry key + params.

    Attributes:
        kind: key into the corresponding plugin registry.
        params: keyword arguments passed to the plugin builder; must hold
            only JSON types (normalised on construction).
    """

    kind: str
    params: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not isinstance(self.kind, str) or not self.kind:
            raise ScenarioError(
                f"{type(self).__name__}.kind must be a non-empty string, "
                f"got {self.kind!r}"
            )
        name = f"{type(self).__name__}.params"
        params = _jsonify(dict(_require_mapping(self.params, name)), name)
        object.__setattr__(self, "params", params)

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, "params": dict(self.params)}

    @classmethod
    def from_dict(cls, document: Mapping[str, Any]) -> "_PluginSpec":
        document = _require_mapping(document, cls.__name__)
        unknown = set(document) - {"kind", "params"}
        if unknown:
            raise ScenarioError(
                f"unknown {cls.__name__} fields: {sorted(unknown)}"
            )
        if "kind" not in document:
            raise ScenarioError(f"{cls.__name__} requires a 'kind' field")
        return cls(kind=document["kind"], params=document.get("params", {}))


@dataclass(frozen=True)
class TopologySpec(_PluginSpec):
    """Which channel graph to build.

    Builtin kinds: ``"ba"``, ``"core-periphery"``, ``"erdos-renyi"``
    (synthetic snapshots), ``"star"``, ``"path"``, ``"circle"``,
    ``"complete"`` (Section IV topologies), and ``"file"`` (a
    describegraph JSON snapshot; params: ``path``).
    """


@dataclass(frozen=True)
class WorkloadSpec(_PluginSpec):
    """The payment-intent process driven through the simulator.

    Builtin kind ``"poisson"`` (params: ``rate`` or per-node ``rates``,
    ``distribution`` = ``"zipf"``/``"uniform"``, ``zipf_s``, and a nested
    ``sizes`` document, e.g. ``{"kind": "truncated-exponential",
    "scale": 0.5, "high": 5.0}``).
    """


@dataclass(frozen=True)
class FeeSpec(_PluginSpec):
    """The global fee function ``F`` of Section II-A.

    Builtin kinds: ``"constant"`` (params: ``fee``), ``"linear"``
    (params: ``base``, ``rate``), ``"piecewise"`` (params: ``knots`` as a
    list of ``[amount, fee]`` pairs). ``kind``/``params`` describe the
    *success* side of the fee, charged when a payment settles.

    Attributes:
        upfront_base: flat fee charged per *attempted* HTLC hop,
            settle or not (the unjamming countermeasure). 0 disables it.
        upfront_rate: proportional per-attempt fee on the hop amount.

    A non-zero upfront side makes the factory build a two-sided
    :class:`~repro.network.fees.FeePolicy` around the success fee.
    Schema v1 documents carry neither field; both default to 0.0, which
    reproduces the historical success-only behaviour exactly.
    """

    upfront_base: float = 0.0
    upfront_rate: float = 0.0

    def __post_init__(self) -> None:
        super().__post_init__()
        for name in ("upfront_base", "upfront_rate"):
            value = getattr(self, name)
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                raise ScenarioError(
                    f"FeeSpec.{name} must be a number, got {value!r}"
                )
            if value < 0:
                raise ScenarioError(
                    f"FeeSpec.{name} must be >= 0, got {value}"
                )

    def to_dict(self) -> Dict[str, Any]:
        doc = super().to_dict()
        doc["upfront_base"] = self.upfront_base
        doc["upfront_rate"] = self.upfront_rate
        return doc

    @classmethod
    def from_dict(cls, document: Mapping[str, Any]) -> "FeeSpec":
        document = _require_mapping(document, cls.__name__)
        unknown = set(document) - {
            "kind", "params", "upfront_base", "upfront_rate",
        }
        if unknown:
            raise ScenarioError(
                f"unknown FeeSpec fields: {sorted(unknown)}"
            )
        if "kind" not in document:
            raise ScenarioError("FeeSpec requires a 'kind' field")
        return cls(
            kind=document["kind"],
            params=document.get("params", {}),
            upfront_base=document.get("upfront_base", 0.0),
            upfront_rate=document.get("upfront_rate", 0.0),
        )

    @property
    def has_upfront(self) -> bool:
        """Whether this spec describes a two-sided policy."""
        return self.upfront_base > 0 or self.upfront_rate > 0


@dataclass(frozen=True)
class AttackSpec(_PluginSpec):
    """An adversarial traffic stage run against the simulation.

    Builtin kinds (see :mod:`repro.attacks.strategies`):
    ``"slow-jamming"``, ``"liquidity-depletion"``, ``"fee-griefing"``.
    Common params: ``budget`` (attacker capital endowment), ``victim``
    (node id; defaults to the highest-betweenness node), ``amount``,
    ``rate``, ``hold_time``, ``max_concurrent``. The spec-level
    ``slot_cap`` param (applied by the attack runner to both the baseline
    and the attacked graph) sets ``max_accepted_htlcs`` on every channel.
    """


@dataclass(frozen=True)
class GrowthSpec(_PluginSpec):
    """The arrival process of an evolution run.

    Builtin kinds (see :mod:`repro.evolution.growth`): ``"poisson"``
    (params: ``rate`` arrivals per epoch) and ``"fixed"`` (params:
    ``per_epoch``). Both accept ``algorithm`` (a
    :class:`JoinAlgorithm <repro.scenarios.registry.JoinAlgorithm>`
    registry key, default ``"greedy"``), ``params`` for it (e.g.
    ``{"budget": 4.0, "lock": 1.0}``), and ``model`` —
    :class:`~repro.params.ModelParameters` overrides for the joining
    user's utility.
    """


@dataclass(frozen=True)
class ChurnSpec(_PluginSpec):
    """The departure process of an evolution run.

    Builtin kinds (see :mod:`repro.evolution.churn`): ``"uniform"``
    (params: ``rate`` — per-node departure probability per epoch) and
    ``"degree-biased"`` (params: ``rate``, ``bias`` — positive bias
    prefers hubs, negative prefers leaves). Both accept ``min_nodes``
    (departures stop once the network would shrink below it, default 3).
    """


@dataclass(frozen=True)
class EvolutionSpec:
    """Epoch-based network evolution settings (no plugin key).

    Each epoch runs: arrivals (``growth``), departures (``churn``,
    realising closure costs through
    :class:`~repro.network.lifecycle.ChannelLifecycle` at
    ``onchain_fee``), a traffic epoch of ``traffic_horizon`` time units
    on the batched backend, and a best-response phase that sweeps
    ``sample`` nodes (all when ``None``) over the ``mode`` deviation
    family (``"structured"``, ``"exhaustive"``, or ``"sampled"`` with
    ``moves_per_node`` candidates) and applies strictly improving moves
    adding at most ``add_budget`` channels each.

    ``utility`` picks the provider the best-response phase maximises:
    ``"analytic"`` is the Section IV :class:`NetworkGameModel
    <repro.equilibrium.node_utility.NetworkGameModel>` on (``a``, ``b``,
    ``edge_cost``, ``zipf_s``); ``"empirical"`` replays the epoch's
    traffic trace on each candidate graph and scores
    ``revenue - fees_paid - edge_cost * degree``.

    The run stops early once ``patience`` consecutive epochs saw no
    arrival, no departure, and no improving move — provided no
    stochastic growth/churn process remains active (a randomly quiet
    epoch of a live process is not convergence). When
    ``final_nash_check`` is true the trajectory's headline row certifies
    the final graph with a full :func:`check_nash
    <repro.equilibrium.nash.check_nash>` sweep (disable for large
    networks).
    """

    epochs: int = 10
    growth: Optional[GrowthSpec] = None
    churn: Optional[ChurnSpec] = None
    utility: str = "analytic"
    traffic_horizon: float = 20.0
    sample: Optional[int] = None
    mode: str = "structured"
    moves_per_node: int = 8
    tolerance: float = 1e-9
    balance: float = 1.0
    add_budget: Optional[int] = None
    patience: int = 2
    a: float = 1.0
    b: float = 1.0
    edge_cost: float = 1.0
    zipf_s: float = 1.0
    onchain_fee: float = 0.1
    final_nash_check: bool = True

    def __post_init__(self) -> None:
        if not isinstance(self.epochs, int) or isinstance(self.epochs, bool) \
                or self.epochs < 1:
            raise ScenarioError(
                f"EvolutionSpec.epochs must be an int >= 1, got {self.epochs!r}"
            )
        for name, spec_cls in (("growth", GrowthSpec), ("churn", ChurnSpec)):
            value = getattr(self, name)
            if value is not None and not isinstance(value, spec_cls):
                raise ScenarioError(
                    f"EvolutionSpec.{name} must be a {spec_cls.__name__} "
                    f"or None, got {type(value).__name__}"
                )
        if self.utility not in ("analytic", "empirical"):
            raise ScenarioError(
                "EvolutionSpec.utility must be 'analytic' or 'empirical', "
                f"got {self.utility!r}"
            )
        if self.mode not in ("structured", "exhaustive", "sampled"):
            raise ScenarioError(
                "EvolutionSpec.mode must be 'structured', 'exhaustive' or "
                f"'sampled', got {self.mode!r}"
            )
        for name in (
            "traffic_horizon", "tolerance", "balance",
            "a", "b", "edge_cost", "zipf_s", "onchain_fee",
        ):
            value = getattr(self, name)
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                raise ScenarioError(
                    f"EvolutionSpec.{name} must be a number, got {value!r}"
                )
            if value < 0:
                raise ScenarioError(
                    f"EvolutionSpec.{name} must be >= 0, got {value}"
                )
        if self.balance <= 0:
            raise ScenarioError(
                f"EvolutionSpec.balance must be > 0, got {self.balance}"
            )
        for name, minimum in (
            ("sample", 1), ("add_budget", 0), ("moves_per_node", 1),
            ("patience", 1),
        ):
            value = getattr(self, name)
            if value is None and name in ("sample", "add_budget"):
                continue
            if not isinstance(value, int) or isinstance(value, bool) \
                    or value < minimum:
                raise ScenarioError(
                    f"EvolutionSpec.{name} must be an int >= {minimum}"
                    f"{' or None' if name in ('sample', 'add_budget') else ''}"
                    f", got {value!r}"
                )
        if self.utility == "empirical" and self.traffic_horizon <= 0:
            raise ScenarioError(
                "EvolutionSpec.utility='empirical' needs traffic epochs: "
                "set traffic_horizon > 0"
            )

    def to_dict(self) -> Dict[str, Any]:
        doc: Dict[str, Any] = {}
        for spec_field in fields(self):
            value = getattr(self, spec_field.name)
            if spec_field.name in ("growth", "churn"):
                doc[spec_field.name] = None if value is None else value.to_dict()
            else:
                doc[spec_field.name] = value
        return doc

    @classmethod
    def from_dict(cls, document: Mapping[str, Any]) -> "EvolutionSpec":
        document = _require_mapping(document, "EvolutionSpec")
        known = {f.name for f in fields(cls)}
        unknown = set(document) - known
        if unknown:
            raise ScenarioError(
                f"unknown EvolutionSpec fields: {sorted(unknown)}"
            )
        kwargs = dict(document)
        for key, spec_cls in (("growth", GrowthSpec), ("churn", ChurnSpec)):
            raw = kwargs.get(key)
            if raw is not None:
                kwargs[key] = spec_cls.from_dict(raw)
        return cls(**kwargs)


@dataclass(frozen=True)
class AlgorithmSpec(_PluginSpec):
    """A joining-strategy optimisation run (Section III).

    Attributes:
        kind: algorithm registry key (``"greedy"``, ``"exhaustive"``,
            ``"continuous"``, ``"bruteforce"``).
        params: algorithm keyword arguments (``budget``, ``lock``,
            ``granularity``, ...).
        user: node id under which the joining user is added.
        model: :class:`~repro.params.ModelParameters` overrides applied on
            top of the defaults (e.g. ``{"zipf_s": 2.0}``).
    """

    user: str = "new-user"
    model: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        super().__post_init__()
        model = _jsonify(
            dict(_require_mapping(self.model, "AlgorithmSpec.model")),
            "AlgorithmSpec.model",
        )
        object.__setattr__(self, "model", model)

    def to_dict(self) -> Dict[str, Any]:
        doc = super().to_dict()
        doc["user"] = self.user
        doc["model"] = dict(self.model)
        return doc

    @classmethod
    def from_dict(cls, document: Mapping[str, Any]) -> "AlgorithmSpec":
        document = _require_mapping(document, cls.__name__)
        unknown = set(document) - {"kind", "params", "user", "model"}
        if unknown:
            raise ScenarioError(
                f"unknown AlgorithmSpec fields: {sorted(unknown)}"
            )
        if "kind" not in document:
            raise ScenarioError("AlgorithmSpec requires a 'kind' field")
        return cls(
            kind=document["kind"],
            params=document.get("params", {}),
            user=document.get("user", "new-user"),
            model=document.get("model", {}),
        )


@dataclass(frozen=True)
class SimulationSpec:
    """Simulator settings (no plugin key — two interchangeable backends).

    Attributes mirror :class:`~repro.simulation.engine.SimulationEngine`
    and its ``schedule_workload`` horizon. ``backend`` selects the
    execution engine: ``"event"`` is the discrete-event loop;
    ``"batched"`` is the vectorised fast path
    (:class:`~repro.simulation.fastpath.BatchedSimulationEngine`), which
    produces the same metrics for the same seed. What each backend
    supports is declared in
    :mod:`repro.scenarios.capabilities` and validated here rather than
    hard-coded per name. ``route_rng`` picks how path-sampling
    randomness is derived: ``"stream"`` draws from one sequential RNG
    (the historical behaviour), ``"payment"`` derives an independent RNG
    per payment from ``(seed, payment index)``, which makes results
    invariant under trace sharding (see
    :class:`~repro.simulation.sharding.ShardedTraceRunner`).
    """

    horizon: float = 100.0
    payment_mode: str = "instant"
    htlc_hold_mean: float = 0.1
    fee_forwarding: bool = True
    path_selection: str = "random"
    backend: str = "event"
    route_rng: str = "stream"

    def __post_init__(self) -> None:
        for name in ("horizon", "htlc_hold_mean"):
            value = getattr(self, name)
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                raise ScenarioError(
                    f"SimulationSpec.{name} must be a number, got {value!r}"
                )
        if self.horizon <= 0:
            raise ScenarioError(
                f"SimulationSpec.horizon must be > 0, got {self.horizon}"
            )
        capabilities = backend_capabilities(self.backend)
        if self.route_rng not in ("stream", "payment"):
            raise ScenarioError(
                f"SimulationSpec.route_rng must be 'stream' or 'payment', "
                f"got {self.route_rng!r}"
            )
        if not capabilities.supports_payment_mode(self.payment_mode):
            raise ScenarioError(
                f"backend {self.backend!r} does not support "
                f"payment_mode={self.payment_mode!r} "
                f"(declared: {list(capabilities.payment_modes)})"
            )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "horizon": self.horizon,
            "payment_mode": self.payment_mode,
            "htlc_hold_mean": self.htlc_hold_mean,
            "fee_forwarding": self.fee_forwarding,
            "path_selection": self.path_selection,
            "backend": self.backend,
            "route_rng": self.route_rng,
        }

    @classmethod
    def from_dict(cls, document: Mapping[str, Any]) -> "SimulationSpec":
        document = _require_mapping(document, cls.__name__)
        known = {f.name for f in fields(cls)}
        unknown = set(document) - known
        if unknown:
            raise ScenarioError(
                f"unknown SimulationSpec fields: {sorted(unknown)}"
            )
        return cls(**dict(document))


@dataclass(frozen=True)
class Scenario:
    """One fully-described experiment: topology + optional stages.

    A scenario with only a ``topology`` builds a graph; adding an
    ``algorithm`` runs a joining-strategy optimiser on it; adding a
    ``simulation`` (with an optional ``workload`` and ``fee``) drives the
    discrete-event simulator; adding an ``attack`` (requires a
    ``simulation``) runs the adversarial traffic engine, which simulates
    an honest baseline and an attacked run and reports the damage; adding
    an ``evolution`` stage (which embeds its own per-epoch traffic, so it
    excludes the other optional stages) runs the epoch-based network
    evolution engine over the topology. The single ``seed`` feeds every
    stochastic stage, so a scenario is a complete, reproducible
    experiment record.
    """

    topology: TopologySpec
    workload: Optional[WorkloadSpec] = None
    fee: Optional[FeeSpec] = None
    algorithm: Optional[AlgorithmSpec] = None
    simulation: Optional[SimulationSpec] = None
    attack: Optional[AttackSpec] = None
    evolution: Optional[EvolutionSpec] = None
    name: str = "scenario"
    seed: int = 0

    def __post_init__(self) -> None:
        if not isinstance(self.topology, TopologySpec):
            raise ScenarioError(
                "Scenario.topology must be a TopologySpec, "
                f"got {type(self.topology).__name__}"
            )
        if not isinstance(self.seed, int) or isinstance(self.seed, bool):
            raise ScenarioError(f"Scenario.seed must be an int, got {self.seed!r}")
        if self.attack is not None:
            if self.simulation is None:
                raise ScenarioError(
                    "an attack stage requires a simulation stage (the "
                    "honest workload the attacker disrupts)"
                )
            if not backend_capabilities(self.simulation.backend).event_injection:
                raise ScenarioError(
                    f"attack stages need a backend with event injection "
                    f"(strategies push events into the engine's queue); "
                    f"backend {self.simulation.backend!r} does not "
                    f"declare it"
                )
            if self.algorithm is not None:
                raise ScenarioError(
                    "attack and algorithm stages cannot be combined: the "
                    "attack runner rebuilds the topology for its "
                    "baseline/attacked pair, which would discard the "
                    "optimiser's joined channels"
                )
        if self.evolution is not None:
            if not isinstance(self.evolution, EvolutionSpec):
                raise ScenarioError(
                    "Scenario.evolution must be an EvolutionSpec, "
                    f"got {type(self.evolution).__name__}"
                )
            if self.simulation is not None:
                raise ScenarioError(
                    "an evolution stage embeds its own per-epoch traffic "
                    "on the batched backend (EvolutionSpec.traffic_horizon)"
                    "; drop the simulation section"
                )
            if self.attack is not None:
                raise ScenarioError(
                    "evolution and attack stages cannot be combined: the "
                    "attack runner needs the event queue and a static "
                    "baseline topology"
                )
            if self.algorithm is not None:
                raise ScenarioError(
                    "evolution and algorithm stages cannot be combined: "
                    "arrivals join through the GrowthSpec's algorithm "
                    "instead"
                )

    def to_dict(self) -> Dict[str, Any]:
        """A plain-JSON document; optional stages are omitted when unset."""
        doc: Dict[str, Any] = {
            "schema_version": SCHEMA_VERSION,
            "name": self.name,
            "seed": self.seed,
            "topology": self.topology.to_dict(),
        }
        for key in (
            "workload", "fee", "algorithm", "simulation", "attack",
            "evolution",
        ):
            spec = getattr(self, key)
            if spec is not None:
                doc[key] = spec.to_dict()
        return doc

    @classmethod
    def from_dict(cls, document: Mapping[str, Any]) -> "Scenario":
        document = _require_mapping(document, "Scenario")
        known = {
            "schema_version", "name", "seed", "topology",
            "workload", "fee", "algorithm", "simulation", "attack",
            "evolution",
        }
        unknown = set(document) - known
        if unknown:
            raise ScenarioError(f"unknown Scenario fields: {sorted(unknown)}")
        version = document.get("schema_version", SCHEMA_VERSION)
        if version not in _READABLE_SCHEMA_VERSIONS:
            raise ScenarioError(
                f"unsupported scenario schema_version {version!r} "
                f"(this library reads versions "
                f"{list(_READABLE_SCHEMA_VERSIONS)})"
            )
        if "topology" not in document:
            raise ScenarioError("Scenario requires a 'topology' section")

        def section(key: str, spec_cls: Any) -> Any:
            raw = document.get(key)
            return None if raw is None else spec_cls.from_dict(raw)

        return cls(
            topology=TopologySpec.from_dict(document["topology"]),
            workload=section("workload", WorkloadSpec),
            fee=section("fee", FeeSpec),
            algorithm=section("algorithm", AlgorithmSpec),
            simulation=section("simulation", SimulationSpec),
            attack=section("attack", AttackSpec),
            evolution=section("evolution", EvolutionSpec),
            name=document.get("name", "scenario"),
            seed=document.get("seed", 0),
        )

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def content_hash(self) -> str:
        """Stable sha256 content address of this scenario.

        The digest is taken over the canonical JSON of :meth:`to_dict`
        (sorted keys, normalised numbers) and salted with the spec and
        artifact schema versions, so equal scenarios hash identically
        across processes and machines while any schema change retires
        old addresses cleanly. This is the key of the content-addressed
        result store (:mod:`repro.service`): same hash, same result —
        never recomputed.
        """
        # Local import: repro.service.hashing imports this module's
        # SCHEMA_VERSION at module scope, so the cycle resolves lazily.
        from ..service.hashing import scenario_content_hash

        return scenario_content_hash(self.to_dict())

    @classmethod
    def from_json(cls, text: str) -> "Scenario":
        try:
            document = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ScenarioError(f"invalid scenario JSON: {exc}") from exc
        return cls.from_dict(document)

    def with_overrides(self, overrides: Mapping[str, Any]) -> "Scenario":
        """A copy with dotted-path overrides applied.

        Paths address the ``to_dict`` document: ``"seed"``,
        ``"topology.params.n"``, ``"algorithm.params.budget"``,
        ``"simulation.horizon"``, ... Intermediate mappings are created as
        needed, so a sweep can set ``"fee.kind"`` on a scenario that has
        no fee section yet (sibling fields then take their defaults).
        """
        doc = self.to_dict()
        for path, value in overrides.items():
            parts = path.split(".")
            node = doc
            for part in parts[:-1]:
                child = node.get(part)
                if child is None:
                    child = node[part] = {}
                elif not isinstance(child, dict):
                    raise ScenarioError(
                        f"override path {path!r} descends into "
                        f"non-mapping segment {part!r}"
                    )
                node = child
            node[parts[-1]] = value
        return Scenario.from_dict(doc)
