"""Transaction-model substrate: who transacts with whom, how big, how often."""

from .distributions import (
    EmpiricalDistribution,
    TransactionDistribution,
    UniformDistribution,
)
from .ranking import degree_ranking, rank_factors, rank_factors_from_degrees
from .rates import (
    edge_probabilities,
    edge_rates,
    intermediary_traffic,
    traffic_profile,
)
from .sizes import (
    FixedSize,
    TransactionSizeDistribution,
    TruncatedExponentialSizes,
    UniformSizes,
)
from .workload import (
    PoissonWorkload,
    TraceArrays,
    Transaction,
    build_poisson_workload,
)
from .zipf import ModifiedZipf

__all__ = [
    "EmpiricalDistribution",
    "FixedSize",
    "ModifiedZipf",
    "PoissonWorkload",
    "TraceArrays",
    "Transaction",
    "TransactionDistribution",
    "TransactionSizeDistribution",
    "TruncatedExponentialSizes",
    "UniformDistribution",
    "UniformSizes",
    "build_poisson_workload",
    "degree_ranking",
    "edge_probabilities",
    "edge_rates",
    "intermediary_traffic",
    "rank_factors",
    "rank_factors_from_degrees",
    "traffic_profile",
]
