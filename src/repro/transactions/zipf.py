"""The modified Zipf transaction distribution of Section II-B.

From the perspective of a sender ``u``, every other node ``v`` gets a
tie-averaged rank factor ``rf(v)`` (see :mod:`repro.transactions.ranking`)
based on its in-degree in ``G - u``, and

    p_trans(u, v) = rf(v) / sum_{v'} rf(v').

Higher-degree nodes are more likely transaction partners — the
degree-proportional pairing the paper motivates from Barabási–Albert-style
real networks. ``s`` tunes the skew: ``s = 0`` recovers the uniform model
of prior work, large ``s`` concentrates all traffic on the top-degree node.
"""

from __future__ import annotations

from typing import Dict, Hashable

from ..errors import NodeNotFound
from ..network.graph import ChannelGraph
from .distributions import TransactionDistribution
from .ranking import rank_factors

__all__ = ["ModifiedZipf"]


class ModifiedZipf(TransactionDistribution):
    """Degree-ranked Zipf pairing with tie averaging.

    Args:
        graph: the PCN whose degrees define the ranking.
        s: Zipf scale parameter (>= 0).
        cache: memoise per-sender rows. The cache must be dropped (create a
            new instance, or call :meth:`invalidate`) whenever the graph's
            topology changes, since ranks depend on degrees.
    """

    def __init__(self, graph: ChannelGraph, s: float = 1.0, cache: bool = True) -> None:
        self.graph = graph
        self.s = s
        self._cache_enabled = cache
        self._rows: Dict[Hashable, Dict[Hashable, float]] = {}

    def invalidate(self) -> None:
        """Drop memoised rows (call after mutating the graph)."""
        self._rows.clear()

    def receivers(self, sender: Hashable) -> Dict[Hashable, float]:
        if sender not in self.graph:
            raise NodeNotFound(sender)
        if self._cache_enabled and sender in self._rows:
            return dict(self._rows[sender])
        factors = rank_factors(self.graph, perspective=sender, s=self.s)
        total = sum(factors.values())
        row = {node: factor / total for node, factor in factors.items()}
        if self._cache_enabled:
            self._rows[sender] = row
        return dict(row)

    def probability(self, sender: Hashable, receiver: Hashable) -> float:
        if sender == receiver:
            return 0.0
        return self.receivers(sender).get(receiver, 0.0)

    def rank_factor(self, sender: Hashable, node: Hashable) -> float:
        """Unnormalised ``rf(node)`` from ``sender``'s perspective."""
        factors = rank_factors(self.graph, perspective=sender, s=self.s)
        return factors.get(node, 0.0)
