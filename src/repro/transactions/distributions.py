"""Who-transacts-with-whom distributions.

The paper's headline model is the modified Zipf distribution (implemented
in :mod:`repro.transactions.zipf`); prior work assumed uniform pairing.
Both are provided behind one interface so algorithms and benches can swap
the assumption and measure its effect (bench E12's ablations rely on this).
"""

from __future__ import annotations

import abc
from typing import Dict, Hashable, Mapping, Sequence

import numpy as np

from ..errors import InvalidParameter, NodeNotFound
from ..network.graph import ChannelGraph

__all__ = [
    "TransactionDistribution",
    "UniformDistribution",
    "EmpiricalDistribution",
]


class TransactionDistribution(abc.ABC):
    """Probability that a given sender transacts with a given receiver."""

    @abc.abstractmethod
    def probability(self, sender: Hashable, receiver: Hashable) -> float:
        """``p_trans(sender, receiver)``; 0 when ``sender == receiver``."""

    @abc.abstractmethod
    def receivers(self, sender: Hashable) -> Dict[Hashable, float]:
        """Full receiver distribution of ``sender`` (sums to 1)."""

    def sample_receiver(
        self, sender: Hashable, rng: np.random.Generator
    ) -> Hashable:
        """Draw one receiver for ``sender``."""
        dist = self.receivers(sender)
        nodes = list(dist)
        probs = np.fromiter((dist[n] for n in nodes), dtype=float, count=len(nodes))
        total = probs.sum()
        if total <= 0:
            raise InvalidParameter(f"receiver distribution of {sender!r} is empty")
        probs /= total
        index = rng.choice(len(nodes), p=probs)
        return nodes[index]


class UniformDistribution(TransactionDistribution):
    """Every other node is an equally likely receiver (the model of [19])."""

    def __init__(self, nodes: Sequence[Hashable]) -> None:
        if len(nodes) < 2:
            raise InvalidParameter("need at least two nodes")
        self._nodes = list(nodes)
        self._node_set = set(nodes)

    @classmethod
    def from_graph(cls, graph: ChannelGraph) -> "UniformDistribution":
        return cls(list(graph.nodes))

    def probability(self, sender: Hashable, receiver: Hashable) -> float:
        if sender not in self._node_set:
            raise NodeNotFound(sender)
        if receiver == sender or receiver not in self._node_set:
            return 0.0
        return 1.0 / (len(self._nodes) - 1)

    def receivers(self, sender: Hashable) -> Dict[Hashable, float]:
        if sender not in self._node_set:
            raise NodeNotFound(sender)
        p = 1.0 / (len(self._nodes) - 1)
        return {node: p for node in self._nodes if node != sender}


class EmpiricalDistribution(TransactionDistribution):
    """A distribution given explicitly as per-sender receiver weights.

    Useful for feeding measured traffic matrices (or adversarial ones in
    tests) through the same code paths as the analytic models. Weights are
    normalised per sender.
    """

    def __init__(
        self, weights: Mapping[Hashable, Mapping[Hashable, float]]
    ) -> None:
        self._table: Dict[Hashable, Dict[Hashable, float]] = {}
        for sender, row in weights.items():
            cleaned = {
                receiver: float(weight)
                for receiver, weight in row.items()
                if receiver != sender and weight > 0
            }
            total = sum(cleaned.values())
            if total <= 0:
                raise InvalidParameter(
                    f"sender {sender!r} has no positive receiver weight"
                )
            self._table[sender] = {r: w / total for r, w in cleaned.items()}

    def probability(self, sender: Hashable, receiver: Hashable) -> float:
        if sender not in self._table:
            raise NodeNotFound(sender)
        return self._table[sender].get(receiver, 0.0)

    def receivers(self, sender: Hashable) -> Dict[Hashable, float]:
        if sender not in self._table:
            raise NodeNotFound(sender)
        return dict(self._table[sender])
