"""Degree ranking and the tie-averaged rank factors of Section II-B.

The modified Zipf distribution ranks, from the perspective of a user ``u``,
every *other* node by in-degree (computed on the graph with ``u`` and its
incident channels removed) and assigns each node ``v`` a *rank factor*

    rf(v) = ( 1/r0^s + 1/(r0+1)^s + ... + 1/(r0+n(v)-1)^s ) / n(v)

where ``r0 = r0(v)`` is the first (best) rank of ``v``'s in-degree class and
``n(v)`` is the size of that class. Averaging over the tie block makes the
probability of transacting with two equal-degree nodes equal, which is the
paper's stated motivation for modifying plain Zipf.

The paper's formula writes the last term as ``1/(r0(v)+n(v))^s``; summing
``n(v)`` consecutive ranks starting at ``r0`` ends at ``r0+n(v)-1``, and we
use that reading (the off-by-one in the text would double-count one rank
between adjacent tie blocks and break normalisation).
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Sequence, Tuple

from ..errors import InvalidParameter, NodeNotFound
from ..network.graph import ChannelGraph

__all__ = ["degree_ranking", "rank_factors", "rank_factors_from_degrees"]


def degree_ranking(
    graph: ChannelGraph, perspective: Optional[Hashable] = None
) -> List[Tuple[Hashable, int]]:
    """Nodes (excluding ``perspective``) with in-degrees, highest first.

    When ``perspective`` is given, its incident channels are ignored when
    counting degrees, matching the subgraph ``G' = G - u`` of Section II-B.
    Ties are broken deterministically by node representation so results are
    stable across runs; the rank *factors* are tie-invariant anyway.
    """
    if perspective is not None and perspective not in graph:
        raise NodeNotFound(perspective)
    degrees: Dict[Hashable, int] = {}
    for node in graph.nodes:
        if node == perspective:
            continue
        degree = 0
        for channel in graph.channels_of(node):
            if perspective is not None and perspective in channel.endpoints:
                continue
            degree += 1
        degrees[node] = degree
    ranked = sorted(degrees.items(), key=lambda kv: (-kv[1], str(kv[0])))
    return ranked


def rank_factors_from_degrees(
    degrees: Sequence[int], s: float
) -> List[float]:
    """Rank factors for a degree sequence sorted in non-increasing order.

    Args:
        degrees: in-degrees sorted highest first (rank 1 first).
        s: Zipf scale parameter (>= 0).

    Returns:
        rank factor per position, same order as ``degrees``.
    """
    if s < 0:
        raise InvalidParameter(f"Zipf parameter s must be >= 0, got {s}")
    if any(d1 < d2 for d1, d2 in zip(degrees, degrees[1:])):
        raise InvalidParameter("degrees must be sorted in non-increasing order")
    factors: List[float] = []
    i = 0
    n = len(degrees)
    while i < n:
        j = i
        while j < n and degrees[j] == degrees[i]:
            j += 1
        # tie block occupies ranks i+1 .. j (1-based)
        block = [1.0 / float(rank) ** s for rank in range(i + 1, j + 1)]
        avg = sum(block) / len(block)
        factors.extend([avg] * (j - i))
        i = j
    return factors


def rank_factors(
    graph: ChannelGraph,
    perspective: Optional[Hashable] = None,
    s: float = 1.0,
) -> Dict[Hashable, float]:
    """Rank factor ``rf(v)`` of every node from ``perspective``'s view.

    The returned factors are *unnormalised*; divide by their sum to obtain
    transaction probabilities (see :class:`~repro.transactions.zipf.ModifiedZipf`).
    """
    ranked = degree_ranking(graph, perspective)
    factors = rank_factors_from_degrees([d for _, d in ranked], s)
    return {node: factor for (node, _), factor in zip(ranked, factors)}
