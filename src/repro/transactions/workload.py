"""Poisson payment workload generation (Section II-B's traffic process).

Transactions are modelled as a marked Poisson process: network-wide
arrivals at rate ``N`` per unit time; each arrival picks a sender
(proportional to per-sender rates ``N_u``), a receiver from the
transaction distribution, and a size from the size distribution. The
superposition/thinning equivalence means this is the same process as
"every sender u emits at rate N_u" — which is how the paper phrases it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Iterator, List, Mapping, Optional, Sequence

import numpy as np

from ..errors import InvalidParameter, ScenarioError
from ..scenarios.registry import register_workload
from .distributions import TransactionDistribution, UniformDistribution
from .sizes import (
    FixedSize,
    TransactionSizeDistribution,
    TruncatedExponentialSizes,
    UniformSizes,
)

__all__ = [
    "PoissonWorkload",
    "TraceArrays",
    "Transaction",
    "build_poisson_workload",
]


@dataclass(frozen=True)
class Transaction:
    """One payment intent."""

    time: float
    sender: Hashable
    receiver: Hashable
    amount: float


#: ``TraceArrays`` endpoint marker: the label was not a known node.
UNKNOWN_ENDPOINT = -1
#: ``TraceArrays`` endpoint marker: sender and receiver were identical.
SELF_PAIR = -2


@dataclass(frozen=True, eq=False)
class TraceArrays:
    """A payment trace in column form: the batched backend's native input.

    Attributes:
        times: ``float64`` arrival times, ascending.
        senders / receivers: ``int64`` indices into ``nodes``;
            :data:`UNKNOWN_ENDPOINT` (``-1``) marks a label outside
            ``nodes`` and :data:`SELF_PAIR` (``-2``) marks
            ``sender == receiver`` — both always fail, so the engines
            only need the marker, not the label.
        amounts: ``float64`` payment sizes.
        nodes: index -> node label (the graph's node order).
        indices: each payment's position in the *full* trace it came
            from. Subsetting (:meth:`select`) preserves them, so a shard
            still derives the exact per-payment route RNG of the
            unsharded run.
        irregular: ``(position, original transaction)`` pairs for marker
            rows, kept so :meth:`to_transactions` is lossless.
    """

    times: np.ndarray
    senders: np.ndarray
    receivers: np.ndarray
    amounts: np.ndarray
    nodes: tuple
    indices: np.ndarray
    irregular: tuple = ()

    def __len__(self) -> int:
        return int(self.times.shape[0])

    @classmethod
    def from_transactions(
        cls, transactions: Sequence[Transaction], nodes: Sequence[Hashable]
    ) -> "TraceArrays":
        """Columnise ``transactions`` against the node order ``nodes``."""
        nodes = tuple(nodes)
        node_index = {node: i for i, node in enumerate(nodes)}
        count = len(transactions)
        times = np.empty(count, dtype=np.float64)
        senders = np.empty(count, dtype=np.int64)
        receivers = np.empty(count, dtype=np.int64)
        amounts = np.empty(count, dtype=np.float64)
        irregular = []
        for pos, tx in enumerate(transactions):
            times[pos] = tx.time
            amounts[pos] = tx.amount
            if tx.sender == tx.receiver:
                senders[pos] = receivers[pos] = SELF_PAIR
                irregular.append((pos, tx))
                continue
            s = node_index.get(tx.sender, UNKNOWN_ENDPOINT)
            r = node_index.get(tx.receiver, UNKNOWN_ENDPOINT)
            senders[pos] = s
            receivers[pos] = r
            if s == UNKNOWN_ENDPOINT or r == UNKNOWN_ENDPOINT:
                irregular.append((pos, tx))
        return cls(
            times=times,
            senders=senders,
            receivers=receivers,
            amounts=amounts,
            nodes=nodes,
            indices=np.arange(count, dtype=np.int64),
            irregular=tuple(irregular),
        )

    def to_transactions(self) -> List[Transaction]:
        """The row form back (lossless, including marker rows)."""
        originals = dict(self.irregular)
        out: List[Transaction] = []
        for pos in range(len(self)):
            if pos in originals:
                out.append(originals[pos])
                continue
            out.append(
                Transaction(
                    time=float(self.times[pos]),
                    sender=self.nodes[int(self.senders[pos])],
                    receiver=self.nodes[int(self.receivers[pos])],
                    amount=float(self.amounts[pos]),
                )
            )
        return out

    def select(self, positions: np.ndarray) -> "TraceArrays":
        """The sub-trace at ``positions`` (global ``indices`` preserved)."""
        positions = np.asarray(positions, dtype=np.int64)
        remap = {int(old): new for new, old in enumerate(positions)}
        irregular = tuple(
            (remap[pos], tx) for pos, tx in self.irregular if pos in remap
        )
        return TraceArrays(
            times=self.times[positions],
            senders=self.senders[positions],
            receivers=self.receivers[positions],
            amounts=self.amounts[positions],
            nodes=self.nodes,
            indices=self.indices[positions],
            irregular=irregular,
        )


class PoissonWorkload:
    """Generates payment intents as a marked Poisson process.

    Args:
        distribution: receiver choice per sender (``p_trans``).
        sender_rates: ``N_u`` per sender; senders with rate 0 never send.
        sizes: payment-size distribution (defaults to fixed size 1).
        seed: RNG seed for reproducibility.
    """

    def __init__(
        self,
        distribution: TransactionDistribution,
        sender_rates: Mapping[Hashable, float],
        sizes: Optional[TransactionSizeDistribution] = None,
        seed: Optional[int] = None,
    ) -> None:
        self.distribution = distribution
        self._senders: List[Hashable] = [
            node for node, rate in sender_rates.items() if rate > 0
        ]
        if not self._senders:
            raise InvalidParameter("at least one sender must have positive rate")
        rates = np.fromiter(
            (sender_rates[node] for node in self._senders), dtype=float
        )
        self.total_rate = float(rates.sum())
        self._sender_probs = rates / self.total_rate
        self.sizes = sizes if sizes is not None else FixedSize(1.0)
        self._rng = np.random.default_rng(seed)

    def generate(self, horizon: float) -> Iterator[Transaction]:
        """Yield transactions with arrival times in ``[0, horizon)``."""
        if horizon <= 0:
            raise InvalidParameter(f"horizon must be > 0, got {horizon}")
        time = 0.0
        while True:
            time += self._rng.exponential(1.0 / self.total_rate)
            if time >= horizon:
                return
            yield self._draw(time)

    def generate_trace(
        self, horizon: float, nodes: Sequence[Hashable]
    ) -> TraceArrays:
        """The ``[0, horizon)`` trace in column form.

        Draws through :meth:`generate` (identical RNG consumption, so the
        arrays describe exactly the transactions an event-driven run
        would see) and columnises against ``nodes`` — pass the graph's
        node order so indices line up with its views.
        """
        return TraceArrays.from_transactions(
            list(self.generate(horizon)), nodes
        )

    def generate_count(self, count: int) -> List[Transaction]:
        """Exactly ``count`` transactions (times still Poisson-spaced)."""
        if count < 0:
            raise InvalidParameter(f"count must be >= 0, got {count}")
        out: List[Transaction] = []
        time = 0.0
        for _ in range(count):
            time += self._rng.exponential(1.0 / self.total_rate)
            out.append(self._draw(time))
        return out

    def _draw(self, time: float) -> Transaction:
        index = self._rng.choice(len(self._senders), p=self._sender_probs)
        sender = self._senders[index]
        receiver = self.distribution.sample_receiver(sender, self._rng)
        amount = float(self.sizes.sample(self._rng, 1)[0])
        return Transaction(time=time, sender=sender, receiver=receiver, amount=amount)

    def empirical_pair_counts(
        self, count: int
    ) -> Dict[Hashable, Dict[Hashable, int]]:
        """Sample ``count`` transactions and tabulate (sender, receiver) counts.

        Used by tests to verify the generator matches ``p_trans``.
        """
        table: Dict[Hashable, Dict[Hashable, int]] = {}
        for tx in self.generate_count(count):
            row = table.setdefault(tx.sender, {})
            row[tx.receiver] = row.get(tx.receiver, 0) + 1
        return table


def _build_sizes(document: Optional[Mapping]) -> Optional[TransactionSizeDistribution]:
    """Build a size distribution from a nested workload-spec document."""
    if document is None:
        return None
    kinds = {
        "fixed": FixedSize,
        "uniform": UniformSizes,
        "truncated-exponential": TruncatedExponentialSizes,
    }
    params = dict(document)
    kind = params.pop("kind", None)
    if kind not in kinds:
        raise ScenarioError(
            f"unknown size distribution {kind!r}; known: {sorted(kinds)}"
        )
    try:
        return kinds[kind](**params)
    except TypeError as exc:
        raise ScenarioError(
            f"size distribution {kind!r} rejected params {params!r}: {exc}"
        ) from exc


@register_workload("poisson")
def build_poisson_workload(
    graph,
    seed: Optional[int] = None,
    rate: float = 1.0,
    rates: Optional[Mapping[str, float]] = None,
    distribution: str = "zipf",
    zipf_s: float = 1.0,
    sizes: Optional[Mapping] = None,
) -> PoissonWorkload:
    """The ``"poisson"`` workload plugin: a marked Poisson process on ``graph``.

    Args:
        graph: the :class:`~repro.network.graph.ChannelGraph` to draw
            senders/receivers from.
        seed: RNG seed (injected by the scenario runner).
        rate: uniform per-sender rate ``N_u`` applied to every node.
        rates: explicit per-node rates; overrides ``rate`` where given
            (nodes absent from the mapping keep ``rate``).
        distribution: receiver choice — ``"zipf"`` (the paper's
            modified-Zipf model, skew ``zipf_s``) or ``"uniform"``.
        zipf_s: Zipf scale parameter (``"zipf"`` only).
        sizes: nested size-distribution document, e.g.
            ``{"kind": "truncated-exponential", "scale": 0.5, "high": 5.0}``;
            default is fixed size 1.
    """
    from .zipf import ModifiedZipf  # local: keeps this module a light import

    if distribution == "zipf":
        receiver_choice: TransactionDistribution = ModifiedZipf(graph, s=zipf_s)
    elif distribution == "uniform":
        receiver_choice = UniformDistribution(list(graph.nodes))
    else:
        raise ScenarioError(
            f"unknown receiver distribution {distribution!r}; "
            "known: ['uniform', 'zipf']"
        )
    sender_rates = {node: rate for node in graph.nodes}
    if rates is not None:
        unknown = sorted(str(node) for node in rates if node not in sender_rates)
        if unknown:
            raise ScenarioError(
                f"rates name nodes not in the graph: {unknown}"
            )
        sender_rates.update({node: float(r) for node, r in rates.items()})
    return PoissonWorkload(
        receiver_choice,
        sender_rates,
        sizes=_build_sizes(sizes),
        seed=seed,
    )
