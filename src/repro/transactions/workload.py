"""Poisson payment workload generation (Section II-B's traffic process).

Transactions are modelled as a marked Poisson process: network-wide
arrivals at rate ``N`` per unit time; each arrival picks a sender
(proportional to per-sender rates ``N_u``), a receiver from the
transaction distribution, and a size from the size distribution. The
superposition/thinning equivalence means this is the same process as
"every sender u emits at rate N_u" — which is how the paper phrases it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Iterator, List, Mapping, Optional, Sequence

import numpy as np

from ..errors import InvalidParameter
from .distributions import TransactionDistribution
from .sizes import FixedSize, TransactionSizeDistribution

__all__ = ["Transaction", "PoissonWorkload"]


@dataclass(frozen=True)
class Transaction:
    """One payment intent."""

    time: float
    sender: Hashable
    receiver: Hashable
    amount: float


class PoissonWorkload:
    """Generates payment intents as a marked Poisson process.

    Args:
        distribution: receiver choice per sender (``p_trans``).
        sender_rates: ``N_u`` per sender; senders with rate 0 never send.
        sizes: payment-size distribution (defaults to fixed size 1).
        seed: RNG seed for reproducibility.
    """

    def __init__(
        self,
        distribution: TransactionDistribution,
        sender_rates: Mapping[Hashable, float],
        sizes: Optional[TransactionSizeDistribution] = None,
        seed: Optional[int] = None,
    ) -> None:
        self.distribution = distribution
        self._senders: List[Hashable] = [
            node for node, rate in sender_rates.items() if rate > 0
        ]
        if not self._senders:
            raise InvalidParameter("at least one sender must have positive rate")
        rates = np.fromiter(
            (sender_rates[node] for node in self._senders), dtype=float
        )
        self.total_rate = float(rates.sum())
        self._sender_probs = rates / self.total_rate
        self.sizes = sizes if sizes is not None else FixedSize(1.0)
        self._rng = np.random.default_rng(seed)

    def generate(self, horizon: float) -> Iterator[Transaction]:
        """Yield transactions with arrival times in ``[0, horizon)``."""
        if horizon <= 0:
            raise InvalidParameter(f"horizon must be > 0, got {horizon}")
        time = 0.0
        while True:
            time += self._rng.exponential(1.0 / self.total_rate)
            if time >= horizon:
                return
            yield self._draw(time)

    def generate_count(self, count: int) -> List[Transaction]:
        """Exactly ``count`` transactions (times still Poisson-spaced)."""
        if count < 0:
            raise InvalidParameter(f"count must be >= 0, got {count}")
        out: List[Transaction] = []
        time = 0.0
        for _ in range(count):
            time += self._rng.exponential(1.0 / self.total_rate)
            out.append(self._draw(time))
        return out

    def _draw(self, time: float) -> Transaction:
        index = self._rng.choice(len(self._senders), p=self._sender_probs)
        sender = self._senders[index]
        receiver = self.distribution.sample_receiver(sender, self._rng)
        amount = float(self.sizes.sample(self._rng, 1)[0])
        return Transaction(time=time, sender=sender, receiver=receiver, amount=amount)

    def empirical_pair_counts(
        self, count: int
    ) -> Dict[Hashable, Dict[Hashable, int]]:
        """Sample ``count`` transactions and tabulate (sender, receiver) counts.

        Used by tests to verify the generator matches ``p_trans``.
        """
        table: Dict[Hashable, Dict[Hashable, int]] = {}
        for tx in self.generate_count(count):
            row = table.setdefault(tx.sender, {})
            row[tx.receiver] = row.get(tx.receiver, 0) + 1
        return table
