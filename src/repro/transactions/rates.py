"""Edge selection probabilities ``p_e`` and transaction rates ``λ_e`` (Eq. 2).

The rate at which a directed edge carries payments is the pair-weighted
edge betweenness of the edge — shortest-path traffic shares weighted by
``p_trans(s, r)`` and scaled by the network-wide sending rate.

Two weighting conventions are exposed:

* ``per_sender_rates=None`` (paper's Eq. 2): every ordered pair (s, r)
  contributes ``p_trans(s, r)``, and ``λ_e = N * p_e`` with one global
  ``N``. This matches "N transactions per unit time, each from a sender
  chosen by the global process".
* ``per_sender_rates`` given: pair (s, r) contributes
  ``N_s * p_trans(s, r)`` directly (the Section IV assumption-1 form with
  per-node sending rates ``N_{v1}``).
"""

from __future__ import annotations

from typing import Dict, Hashable, Mapping, Optional, Tuple

from ..network.betweenness import (
    BetweennessResult,
    pair_weighted_betweenness,
    pair_weighted_betweenness_exact,
)
from ..network.graph import ChannelGraph
from .distributions import TransactionDistribution

__all__ = [
    "edge_probabilities",
    "edge_rates",
    "intermediary_traffic",
    "traffic_profile",
]

Edge = Tuple[Hashable, Hashable]


def _pair_weight(
    distribution: TransactionDistribution,
    per_sender_rates: Optional[Mapping[Hashable, float]],
):
    if per_sender_rates is None:
        return lambda s, r: distribution.probability(s, r)
    return lambda s, r: per_sender_rates.get(s, 0.0) * distribution.probability(s, r)


def traffic_profile(
    graph: ChannelGraph,
    distribution: TransactionDistribution,
    amount: float = 0.0,
    per_sender_rates: Optional[Mapping[Hashable, float]] = None,
    exact: bool = False,
) -> BetweennessResult:
    """Node and edge traffic shares under ``distribution``.

    Args:
        graph: the PCN.
        distribution: ``p_trans``.
        amount: restrict to the reduced subgraph able to carry ``amount``.
        per_sender_rates: optional ``N_s`` per sender (see module docs).
        exact: use literal shortest-path enumeration instead of the
            weighted-Brandes pass (slow; for cross-checking).
    """
    view = graph.view(directed=True, reduced=amount)
    weight = _pair_weight(distribution, per_sender_rates)
    if exact:
        return pair_weighted_betweenness_exact(view, weight)
    return pair_weighted_betweenness(view, weight)


def edge_probabilities(
    graph: ChannelGraph,
    distribution: TransactionDistribution,
    amount: float = 0.0,
    exact: bool = False,
    sender_weights: Optional[Mapping[Hashable, float]] = None,
) -> Dict[Edge, float]:
    """``p_e`` of Eq. 2: probability edge ``e`` is used by *one* transaction.

    A single transaction picks a sender (uniformly by default, or by the
    normalised ``sender_weights``), then a receiver from ``p_trans``; the
    literal sum in Eq. 2 adds one unit of mass per sender and is therefore
    not a probability — this implementation normalises so that
    ``Σ_pairs weight = 1``, matching the simulator's arrival process
    (every value is ``1/n`` of the literal formula under uniform senders).
    """
    nodes = list(graph.nodes)
    if sender_weights is None:
        share = 1.0 / len(nodes)
        weights = {v: share for v in nodes}
    else:
        total = sum(w for w in sender_weights.values() if w > 0)
        if total <= 0:
            raise ValueError("sender_weights must have positive mass")
        weights = {v: max(w, 0.0) / total for v, w in sender_weights.items()}
    profile = traffic_profile(
        graph, distribution, amount=amount, exact=exact,
        per_sender_rates=weights,
    )
    return profile.edge


def edge_rates(
    graph: ChannelGraph,
    distribution: TransactionDistribution,
    total_tx_rate: float,
    amount: float = 0.0,
    exact: bool = False,
    sender_weights: Optional[Mapping[Hashable, float]] = None,
) -> Dict[Edge, float]:
    """``λ_e = N * p_e`` for every directed edge (Eq. 2 scaled by ``N``).

    ``total_tx_rate`` is the network-wide arrival rate ``N``; the per-pair
    split follows :func:`edge_probabilities`.
    """
    probs = edge_probabilities(
        graph, distribution, amount=amount, exact=exact,
        sender_weights=sender_weights,
    )
    return {edge: total_tx_rate * p for edge, p in probs.items()}


def intermediary_traffic(
    graph: ChannelGraph,
    distribution: TransactionDistribution,
    per_sender_rates: Optional[Mapping[Hashable, float]] = None,
    amount: float = 0.0,
    exact: bool = False,
) -> Dict[Hashable, float]:
    """Expected forwarding traffic through each node as an intermediary.

    Multiplying by ``f_avg`` gives Eq. 3's expected revenue; see
    :mod:`repro.core.revenue`.
    """
    profile = traffic_profile(
        graph,
        distribution,
        amount=amount,
        per_sender_rates=per_sender_rates,
        exact=exact,
    )
    return profile.node
