"""Transaction-size distributions on ``[0, T]``.

The paper assumes transactions have sizes in ``[0, T]`` drawn from a global
size distribution; ``f_avg`` is the fee function averaged under it
(Section II-A). The simulator also samples actual payment amounts from
these distributions.
"""

from __future__ import annotations

import abc
from typing import Tuple

import numpy as np

_trapz = getattr(np, "trapezoid", getattr(np, "trapz", None))

from ..errors import InvalidParameter

__all__ = [
    "TransactionSizeDistribution",
    "UniformSizes",
    "TruncatedExponentialSizes",
    "FixedSize",
]


class TransactionSizeDistribution(abc.ABC):
    """A continuous (or degenerate) distribution of payment amounts."""

    @abc.abstractmethod
    def support(self) -> Tuple[float, float]:
        """``(lo, hi)`` bounds of possible sizes."""

    @abc.abstractmethod
    def pdf(self, t: np.ndarray) -> np.ndarray:
        """Density evaluated element-wise on ``t``."""

    @abc.abstractmethod
    def sample(self, rng: np.random.Generator, n: int = 1) -> np.ndarray:
        """Draw ``n`` sizes."""

    def mean(self, grid_points: int = 2001) -> float:
        """Expected size via trapezoidal integration of ``t * pdf(t)``."""
        lo, hi = self.support()
        grid = np.linspace(lo, hi, grid_points)
        return float(_trapz(grid * self.pdf(grid), grid))


class UniformSizes(TransactionSizeDistribution):
    """Sizes uniform on ``[low, high]``."""

    def __init__(self, high: float, low: float = 0.0) -> None:
        if not high > low >= 0:
            raise InvalidParameter("need high > low >= 0")
        self.low = low
        self.high = high

    def support(self) -> Tuple[float, float]:
        return (self.low, self.high)

    def pdf(self, t: np.ndarray) -> np.ndarray:
        t = np.asarray(t, dtype=float)
        inside = (t >= self.low) & (t <= self.high)
        return np.where(inside, 1.0 / (self.high - self.low), 0.0)

    def sample(self, rng: np.random.Generator, n: int = 1) -> np.ndarray:
        return rng.uniform(self.low, self.high, size=n)


class TruncatedExponentialSizes(TransactionSizeDistribution):
    """Exponential(scale) truncated to ``[0, T]``.

    A heavier concentration of small payments, which is what public
    Lightning payment studies report; the truncation keeps the paper's
    bounded-size assumption.
    """

    def __init__(self, scale: float, high: float) -> None:
        if scale <= 0 or high <= 0:
            raise InvalidParameter("scale and high must be > 0")
        self.scale = scale
        self.high = high
        self._mass = 1.0 - np.exp(-high / scale)

    def support(self) -> Tuple[float, float]:
        return (0.0, self.high)

    def pdf(self, t: np.ndarray) -> np.ndarray:
        t = np.asarray(t, dtype=float)
        inside = (t >= 0) & (t <= self.high)
        dens = np.exp(-t / self.scale) / (self.scale * self._mass)
        return np.where(inside, dens, 0.0)

    def sample(self, rng: np.random.Generator, n: int = 1) -> np.ndarray:
        # inverse CDF of the truncated exponential
        u = rng.uniform(0.0, 1.0, size=n)
        return -self.scale * np.log1p(-u * self._mass)


class FixedSize(TransactionSizeDistribution):
    """Every transaction has the same size (degenerate distribution).

    ``pdf`` is represented as a narrow triangular spike so that numeric
    integration of ``E[F(t)]`` still works; ``sample`` is exact.
    """

    def __init__(self, size: float, width_fraction: float = 1e-3) -> None:
        if size <= 0:
            raise InvalidParameter("size must be > 0")
        if not 0 < width_fraction < 1:
            raise InvalidParameter("width_fraction must be in (0, 1)")
        self.size = size
        self._half_width = size * width_fraction / 2.0

    def support(self) -> Tuple[float, float]:
        return (self.size - self._half_width, self.size + self._half_width)

    def pdf(self, t: np.ndarray) -> np.ndarray:
        t = np.asarray(t, dtype=float)
        h = self._half_width
        peak = 1.0 / h  # triangle of base 2h and height 1/h integrates to 1
        dens = peak * (1.0 - np.abs(t - self.size) / h)
        return np.clip(dens, 0.0, None)

    def sample(self, rng: np.random.Generator, n: int = 1) -> np.ndarray:
        return np.full(n, self.size)

    def mean(self, grid_points: int = 2001) -> float:
        return self.size
