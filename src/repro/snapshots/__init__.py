"""Synthetic Lightning snapshots and describegraph-style IO."""

from .io import from_describegraph, load_snapshot, save_snapshot, to_describegraph
from .synthetic import (
    barabasi_albert_snapshot,
    core_periphery_snapshot,
    erdos_renyi_snapshot,
)

__all__ = [
    "barabasi_albert_snapshot",
    "core_periphery_snapshot",
    "erdos_renyi_snapshot",
    "from_describegraph",
    "load_snapshot",
    "save_snapshot",
    "to_describegraph",
]
