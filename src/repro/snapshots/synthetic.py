"""Synthetic Lightning-Network-like topologies.

The paper's transaction model is motivated by Barabási–Albert preferential
attachment (Section II-B), and its joining-node algorithms are meant to be
run against public Lightning snapshots. We have no network access, so this
module generates synthetic snapshots that preserve the properties the model
actually consumes:

* heavy-tailed degree distribution (BA preferential attachment), which is
  what drives the Zipf rank factors;
* a small dense core and a large sparse periphery (core–periphery variant),
  matching published LN topology studies;
* lognormal channel capacities with both sides funded, so the reduced
  subgraph ``G'`` (Section II-B) is non-trivial.

Real snapshots in lnd ``describegraph`` JSON format load through
:mod:`repro.snapshots.io` into the same :class:`ChannelGraph`.
"""

from __future__ import annotations

from typing import Optional

import networkx as nx
import numpy as np

from ..errors import InvalidParameter
from ..network.graph import ChannelGraph
from ..scenarios.registry import register_topology

__all__ = [
    "barabasi_albert_snapshot",
    "core_periphery_snapshot",
    "erdos_renyi_snapshot",
]


def _fund_channels(
    graph: nx.Graph,
    rng: np.random.Generator,
    capacity_mu: float,
    capacity_sigma: float,
    balance_skew: float,
) -> ChannelGraph:
    """Turn an undirected structure graph into a funded ChannelGraph.

    Capacities are lognormal; each channel's capacity is split between the
    two sides by a Beta(balance_skew, balance_skew) draw (skew -> inf gives
    a 50/50 split; skew = 1 gives uniform splits).
    """
    pcn = ChannelGraph()
    for node in graph.nodes:
        pcn.add_node(f"n{node}")
    for u, v in graph.edges:
        capacity = float(rng.lognormal(mean=capacity_mu, sigma=capacity_sigma))
        share = float(rng.beta(balance_skew, balance_skew))
        pcn.add_channel(f"n{u}", f"n{v}", capacity * share, capacity * (1 - share))
    return pcn


@register_topology("ba", "barabasi-albert")
def barabasi_albert_snapshot(
    n: int,
    attachments: int = 2,
    capacity_mu: float = 1.5,
    capacity_sigma: float = 1.0,
    balance_skew: float = 5.0,
    seed: Optional[int] = None,
) -> ChannelGraph:
    """A BA preferential-attachment snapshot with ``n`` nodes.

    Args:
        n: number of nodes.
        attachments: channels each arriving node opens (BA's ``m``).
        capacity_mu / capacity_sigma: lognormal capacity parameters.
        balance_skew: Beta parameter splitting capacity between the sides.
        seed: RNG seed.
    """
    if n < attachments + 1:
        raise InvalidParameter("need n > attachments")
    rng = np.random.default_rng(seed)
    structure = nx.barabasi_albert_graph(
        n, attachments, seed=int(rng.integers(0, 2**31))
    )
    return _fund_channels(structure, rng, capacity_mu, capacity_sigma, balance_skew)


@register_topology("core-periphery")
def core_periphery_snapshot(
    core_size: int = 12,
    periphery_size: int = 88,
    periphery_links: int = 2,
    capacity_mu: float = 1.5,
    capacity_sigma: float = 1.0,
    balance_skew: float = 5.0,
    seed: Optional[int] = None,
) -> ChannelGraph:
    """A dense-core / sparse-periphery snapshot.

    The core is a clique of hubs (well-connected routing nodes); each
    periphery node connects to ``periphery_links`` core hubs chosen
    proportionally to current hub degree — the "connect to a hub"
    heuristic the paper's introduction describes as the status quo.
    """
    if core_size < 2:
        raise InvalidParameter("core_size must be >= 2")
    if periphery_links < 1 or periphery_links > core_size:
        raise InvalidParameter("periphery_links must be in [1, core_size]")
    rng = np.random.default_rng(seed)
    structure = nx.Graph()
    core = list(range(core_size))
    structure.add_nodes_from(core)
    for i in core:
        for j in core[i + 1 :]:
            structure.add_edge(i, j)
    degrees = {hub: core_size - 1 for hub in core}
    for p in range(core_size, core_size + periphery_size):
        weights = np.fromiter((degrees[h] for h in core), dtype=float)
        weights /= weights.sum()
        chosen = rng.choice(core, size=periphery_links, replace=False, p=weights)
        for hub in chosen:
            structure.add_edge(p, int(hub))
            degrees[int(hub)] += 1
    return _fund_channels(structure, rng, capacity_mu, capacity_sigma, balance_skew)


@register_topology("erdos-renyi", "er")
def erdos_renyi_snapshot(
    n: int,
    p: float = 0.1,
    capacity_mu: float = 1.5,
    capacity_sigma: float = 1.0,
    balance_skew: float = 5.0,
    seed: Optional[int] = None,
) -> ChannelGraph:
    """A connected Erdős–Rényi snapshot (baseline without degree skew).

    Used by ablation benches to isolate the effect of the heavy-tailed
    degree distribution on the Zipf model. Resamples until connected.
    """
    if n < 2:
        raise InvalidParameter("n must be >= 2")
    if not 0 < p <= 1:
        raise InvalidParameter("p must be in (0, 1]")
    rng = np.random.default_rng(seed)
    for _ in range(1000):
        structure = nx.gnp_random_graph(n, p, seed=int(rng.integers(0, 2**31)))
        if nx.is_connected(structure):
            return _fund_channels(
                structure, rng, capacity_mu, capacity_sigma, balance_skew
            )
    raise InvalidParameter(
        f"could not sample a connected G({n}, {p}) in 1000 attempts; increase p"
    )
