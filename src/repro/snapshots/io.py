"""Snapshot serialisation in an lnd ``describegraph``-compatible JSON shape.

The exported document has the two top-level arrays lnd emits::

    {
      "nodes":  [{"pub_key": "<node id>"} ...],
      "edges":  [{"channel_id": "...", "node1_pub": "...",
                  "node2_pub": "...", "capacity": "123",
                  "node1_balance": "61", "node2_balance": "62"}, ...]
    }

``node1_balance``/``node2_balance`` are our extension (real gossip does not
reveal balances); when absent, capacity is split evenly, which is the
standard assumption in LN research when only gossip data is available.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from ..errors import SnapshotFormatError
from ..network.graph import ChannelGraph
from ..scenarios.registry import register_topology

__all__ = ["to_describegraph", "from_describegraph", "save_snapshot", "load_snapshot"]


def to_describegraph(graph: ChannelGraph) -> dict:
    """Serialise a :class:`ChannelGraph` into a describegraph-style dict."""
    nodes = [{"pub_key": str(node)} for node in graph.nodes]
    edges = []
    for channel in graph.channels:
        edges.append(
            {
                "channel_id": channel.channel_id,
                "node1_pub": str(channel.u),
                "node2_pub": str(channel.v),
                "capacity": repr(channel.capacity),
                "node1_balance": repr(channel.balance(channel.u)),
                "node2_balance": repr(channel.balance(channel.v)),
            }
        )
    return {"nodes": nodes, "edges": edges}


def from_describegraph(document: dict) -> ChannelGraph:
    """Parse a describegraph-style dict into a :class:`ChannelGraph`.

    Raises:
        SnapshotFormatError: on missing keys or unparsable numbers.
    """
    if not isinstance(document, dict):
        raise SnapshotFormatError("snapshot document must be a JSON object")
    graph = ChannelGraph()
    for entry in document.get("nodes", []):
        try:
            graph.add_node(entry["pub_key"])
        except (KeyError, TypeError) as exc:
            raise SnapshotFormatError(f"bad node entry {entry!r}") from exc
    for entry in document.get("edges", []):
        try:
            u = entry["node1_pub"]
            v = entry["node2_pub"]
            capacity = float(entry["capacity"])
        except (KeyError, TypeError, ValueError) as exc:
            raise SnapshotFormatError(f"bad edge entry {entry!r}") from exc
        if capacity < 0:
            raise SnapshotFormatError(f"negative capacity in {entry!r}")
        if "node1_balance" in entry or "node2_balance" in entry:
            try:
                balance_u = float(entry["node1_balance"])
                balance_v = float(entry["node2_balance"])
            except (KeyError, TypeError, ValueError) as exc:
                raise SnapshotFormatError(
                    f"both balances required when either present: {entry!r}"
                ) from exc
            if abs((balance_u + balance_v) - capacity) > 1e-6 * max(capacity, 1.0):
                raise SnapshotFormatError(
                    f"balances {balance_u}+{balance_v} != capacity {capacity}"
                )
        else:
            balance_u = balance_v = capacity / 2.0
        graph.add_channel(
            u, v, balance_u, balance_v, channel_id=entry.get("channel_id")
        )
    return graph


def save_snapshot(graph: ChannelGraph, path: Union[str, Path]) -> None:
    """Write ``graph`` to ``path`` as describegraph JSON."""
    Path(path).write_text(json.dumps(to_describegraph(graph), indent=2))


@register_topology("file")
def load_snapshot(path: Union[str, Path]) -> ChannelGraph:
    """Load a describegraph JSON snapshot from ``path``."""
    try:
        document = json.loads(Path(path).read_text())
    except json.JSONDecodeError as exc:
        raise SnapshotFormatError(f"invalid JSON in {path}") from exc
    return from_describegraph(document)
