"""Canonical spec hashing: the content address of a scenario.

Every entry of the result store (:mod:`repro.service.store`) and every
job of the service queue (:mod:`repro.service.queue`) is keyed by the
sha256 of a :class:`~repro.scenarios.specs.Scenario`'s **canonical
JSON** — the one stable byte string all equal scenarios share:

* keys sorted, separators minimal, ASCII-only output;
* numbers normalised so hashing agrees with dataclass equality
  (``SimulationSpec(horizon=100) == SimulationSpec(horizon=100.0)``
  must hash identically): integral floats collapse to ints, ``-0.0``
  collapses to ``0``, and non-finite floats are rejected outright
  (they have no JSON form, so they could never round-trip anyway);
* the digest is salted with the scenario schema version *and* the
  artifact schema version, so changing either the spec layout or the
  shape of stored results retires every old store entry cleanly —
  stale cache entries become unreachable instead of wrong.

The functions here are dependency leaves (stdlib + the two version
constants); :meth:`Scenario.content_hash
<repro.scenarios.specs.Scenario.content_hash>` is a thin wrapper over
:func:`scenario_content_hash`.
"""

from __future__ import annotations

import hashlib
import json
import math
from typing import Any, Mapping

from ..errors import ScenarioError
from ..scenarios.specs import SCHEMA_VERSION as SPEC_SCHEMA_VERSION

__all__ = [
    "ARTIFACT_SCHEMA_VERSION",
    "canonical_json",
    "content_hash",
    "point_hash",
    "scenario_content_hash",
]

#: Version of the serialised result artifacts (``ScenarioResult`` /
#: ``Trajectory`` / ``AttackReport`` documents). Bump when their layout
#: changes: the hash salt below then invalidates every store entry.
#: v2: upfront-fee revenue fields in SimulationMetrics / AttackReport.
ARTIFACT_SCHEMA_VERSION = 2

#: Every digest starts with this, so spec- or artifact-schema bumps
#: cleanly retire all previously stored results.
_HASH_SALT = (
    f"repro/spec/v{SPEC_SCHEMA_VERSION}/artifacts/v{ARTIFACT_SCHEMA_VERSION}\n"
)


def _normalise(
    value: Any, where: str = "document", allow_non_finite: bool = False
) -> Any:
    """Reduce ``value`` to the canonical JSON value space.

    ``allow_non_finite`` admits ``inf``/``-inf``/``nan`` floats (the
    store's *payload* domain: result documents may carry them, e.g. the
    ``-inf`` objective of an infeasible greedy prefix, and Python's JSON
    round-trips them as stable ``Infinity``/``NaN`` tokens). The *hash*
    domain stays strict: scenario specs and sweep points must be finite.

    Raises:
        ScenarioError: on non-JSON types, and (unless allowed) on
            non-finite floats.
    """
    if isinstance(value, bool) or value is None or isinstance(value, (int, str)):
        return value
    if isinstance(value, float):
        if not math.isfinite(value):
            if allow_non_finite:
                return value
            raise ScenarioError(
                f"non-finite float {value!r} at {where} has no canonical "
                "JSON form"
            )
        # Collapse integral floats (and -0.0) to ints so the hash agrees
        # with numeric equality; 2**53 bounds exact float integrality.
        if value.is_integer() and abs(value) <= 2.0**53:
            return int(value)
        return value
    if isinstance(value, Mapping):
        out = {}
        for key, item in value.items():
            if not isinstance(key, str):
                raise ScenarioError(
                    f"non-string mapping key {key!r} at {where}"
                )
            out[key] = _normalise(item, f"{where}.{key}", allow_non_finite)
        return out
    if isinstance(value, (list, tuple)):
        return [
            _normalise(item, f"{where}[{index}]", allow_non_finite)
            for index, item in enumerate(value)
        ]
    raise ScenarioError(
        f"value of type {type(value).__name__} at {where} is not "
        "JSON-serialisable"
    )


def canonical_json(document: Any, allow_non_finite: bool = False) -> str:
    """The one canonical JSON text of ``document``.

    Sorted keys, minimal separators, ASCII escapes, normalised numbers —
    two documents produce the same string iff they are equal under the
    store's notion of identity. With ``allow_non_finite``, inf/nan floats
    serialise as Python's ``Infinity``/``-Infinity``/``NaN`` tokens
    (deterministic, and ``json.loads`` parses them back).
    """
    return json.dumps(
        _normalise(document, allow_non_finite=allow_non_finite),
        sort_keys=True,
        separators=(",", ":"),
        ensure_ascii=True,
        allow_nan=allow_non_finite,
    )


def content_hash(document: Any) -> str:
    """Version-salted sha256 hex digest of ``document``'s canonical JSON."""
    digest = hashlib.sha256()
    digest.update(_HASH_SALT.encode("ascii"))
    digest.update(canonical_json(document).encode("utf-8"))
    return digest.hexdigest()


def scenario_content_hash(scenario_document: Mapping[str, Any]) -> str:
    """Content address of one scenario ``to_dict`` document.

    The whole document participates — including ``name`` and ``seed`` —
    so a hash names one exact, reproducible experiment record and the
    stored result can be replayed from the hash alone.
    """
    if not isinstance(scenario_document, Mapping):
        raise ScenarioError(
            "scenario_content_hash expects a Scenario.to_dict() mapping, "
            f"got {type(scenario_document).__name__}"
        )
    return content_hash({"scenario": _normalise(dict(scenario_document))})


def point_hash(namespace: str, point: Mapping[str, Any]) -> str:
    """Content address of one generic sweep point under ``namespace``.

    The cache-aware :func:`repro.analysis.sweeps.run_sweep` keys rows of
    callable-per-point sweeps this way: the namespace names the evaluator
    (and must change when its semantics do), the point is the kwargs.
    """
    if not isinstance(namespace, str) or not namespace:
        raise ScenarioError("point_hash namespace must be a non-empty string")
    return content_hash({"namespace": namespace, "point": _normalise(dict(point))})
