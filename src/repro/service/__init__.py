"""Content-addressed scenario service: hashing, store, queue, daemon.

The service layer turns every :class:`~repro.scenarios.specs.Scenario`
into a stable content address (:func:`scenario_content_hash` — sha256 of
canonical JSON, version-salted) and uses it to memoise execution:

* :class:`ResultStore` — a crash-safe filesystem store mapping
  spec-hash -> result document (atomic tmp+rename writes, checksum-
  verified reads with corruption quarantine, LRU-bounded ``gc``);
* :class:`JobManager` — an asyncio queue with in-flight dedupe, a
  bounded worker pool, and retry-on-worker-crash;
* :class:`ServiceServer` / :class:`ServiceClient` — the
  ``python -m repro serve`` JSON-lines-over-TCP daemon and its
  synchronous client.

Import-order note: hashing and store are dependency leaves and load
eagerly; the queue and daemon (which pull in the runner, hence every
builtin provider) load lazily on first attribute access (PEP 562).
"""

from typing import TYPE_CHECKING

from .hashing import (
    ARTIFACT_SCHEMA_VERSION,
    canonical_json,
    content_hash,
    point_hash,
    scenario_content_hash,
)
from .store import ResultStore, StoreStats, default_store_path

if TYPE_CHECKING:  # pragma: no cover - lazy at runtime, eager for typing
    from .daemon import DEFAULT_HOST, DEFAULT_PORT, ServiceClient, ServiceServer
    from .queue import Job, JobManager

__all__ = [
    "ARTIFACT_SCHEMA_VERSION",
    "DEFAULT_HOST",
    "DEFAULT_PORT",
    "Job",
    "JobManager",
    "ResultStore",
    "ServiceClient",
    "ServiceServer",
    "StoreStats",
    "canonical_json",
    "content_hash",
    "default_store_path",
    "point_hash",
    "scenario_content_hash",
]

_LAZY_EXPORTS = {
    "Job": "queue",
    "JobManager": "queue",
    "ServiceClient": "daemon",
    "ServiceServer": "daemon",
    "DEFAULT_HOST": "daemon",
    "DEFAULT_PORT": "daemon",
}


def __getattr__(name: str):
    module_name = _LAZY_EXPORTS.get(name)
    if module_name is not None:
        import importlib

        module = importlib.import_module(f".{module_name}", __name__)
        return getattr(module, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__():
    return sorted(set(globals()) | set(_LAZY_EXPORTS))
