"""``repro serve`` — a JSON-lines-over-TCP scenario service.

The :class:`ServiceServer` binds localhost, wraps a
:class:`~repro.service.queue.JobManager`, and speaks a line protocol:
each request is one JSON object terminated by ``\\n``, each response one
JSON object ``{"ok": true, ...}`` or ``{"ok": false, "error": ...}``.

Commands:

``{"cmd": "ping"}``
    liveness probe; answers ``{"ok": true, "pong": true}``.
``{"cmd": "submit", "scenario": {...}, "wait": bool}``
    content-address and enqueue a scenario document. With ``wait`` the
    response carries the result document; without, it returns
    immediately with the job's ``spec_hash`` and state.
``{"cmd": "status", "hash": ...}``
    job snapshot (state, events, waiters) — or every job when ``hash``
    is omitted.
``{"cmd": "result", "hash": ...}``
    the stored result document for a finished hash.
``{"cmd": "sweep", "scenario": {...}, "grid": {...}}``
    enqueue every grid point (seeds derived exactly as
    :meth:`ScenarioRunner.run_sweep` derives them) and answer with the
    rows in grid order plus per-point cache states.
``{"cmd": "cancel", "hash": ...}``
    cancel a queued/running job.
``{"cmd": "stats"}``
    queue + store counters (including ``started_at_monotonic`` /
    ``events_seq`` for restart detection).
``{"cmd": "metrics"}``
    Prometheus text exposition of the queue's instruments — job-state
    gauges, store hit rate, the queued->running latency histogram.
``{"cmd": "shutdown"}``
    stop serving after this response.

:class:`ServiceClient` is the synchronous counterpart used by the
``repro submit`` / ``repro status`` CLI: one TCP connection per request,
no event loop required on the caller's side.
"""

from __future__ import annotations

import asyncio
import json
import socket
from typing import Any, Dict, List, Optional, Tuple, Union

from ..errors import ServiceError
from .queue import JobManager
from .store import ResultStore

__all__ = ["ServiceServer", "ServiceClient", "DEFAULT_HOST", "DEFAULT_PORT"]

DEFAULT_HOST = "127.0.0.1"
DEFAULT_PORT = 8923

#: Cap on one request line (a scenario document is small; a line this
#: long is a protocol violation, not a workload).
MAX_LINE_BYTES = 8 * 1024 * 1024


class ServiceServer:
    """The long-lived scenario daemon.

    Args:
        store: result store (instance, path, or ``None`` for default).
        host: bind address; keep the default loopback — the protocol is
            unauthenticated by design.
        port: TCP port (0 picks a free one; see :attr:`port` after
            :meth:`start`).
        manager: inject a preconfigured :class:`JobManager` (tests);
            otherwise one is built from ``workers``/``worker``.
        workers: pool size for the built manager.
        worker: worker kind for the built manager.
    """

    def __init__(
        self,
        store: Optional[Union[ResultStore, str]] = None,
        host: str = DEFAULT_HOST,
        port: int = DEFAULT_PORT,
        manager: Optional[JobManager] = None,
        workers: int = 2,
        worker: str = "process",
    ) -> None:
        self.host = host
        self.port = port
        self._store_source = store
        self._manager_override = manager
        self._workers = workers
        self._worker = worker
        self.manager: Optional[JobManager] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._stopping: Optional[asyncio.Event] = None

    # -- lifecycle -------------------------------------------------------

    async def start(self) -> None:
        """Bind the socket and start accepting connections."""
        self._stopping = asyncio.Event()
        self.manager = self._manager_override or JobManager(
            store=self._store_source,
            max_workers=self._workers,
            worker=self._worker,
        )
        self._server = await asyncio.start_server(
            self._handle_connection, host=self.host, port=self.port
        )
        sockets = self._server.sockets or []
        if sockets:
            self.port = sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        """Run until :meth:`stop` (or a ``shutdown`` command)."""
        if self._server is None:
            await self.start()
        assert self._stopping is not None
        await self._stopping.wait()
        await self._shutdown()

    async def stop(self) -> None:
        """Request shutdown (idempotent)."""
        if self._stopping is not None:
            self._stopping.set()

    async def _shutdown(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self.manager is not None and self.manager is not self._manager_override:
            await self.manager.close()

    # -- protocol --------------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    line = await reader.readline()
                except (ConnectionError, asyncio.LimitOverrunError):
                    break
                if not line:
                    break
                if len(line) > MAX_LINE_BYTES:
                    await self._reply(
                        writer, {"ok": False, "error": "request too large"}
                    )
                    break
                response = await self._dispatch(line)
                await self._reply(writer, response)
                if response.get("_close"):
                    break
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _reply(
        self, writer: asyncio.StreamWriter, response: Dict[str, Any]
    ) -> None:
        response = {k: v for k, v in response.items() if not k.startswith("_")}
        writer.write(json.dumps(response).encode("utf-8") + b"\n")
        await writer.drain()

    async def _dispatch(self, line: bytes) -> Dict[str, Any]:
        try:
            request = json.loads(line.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            return {"ok": False, "error": f"bad request: {exc}"}
        if not isinstance(request, dict) or "cmd" not in request:
            return {"ok": False, "error": "request must be {'cmd': ...}"}
        command = request["cmd"]
        handler = getattr(self, f"_cmd_{command}", None)
        if handler is None:
            return {"ok": False, "error": f"unknown command {command!r}"}
        try:
            return await handler(request)
        except ServiceError as exc:
            return {"ok": False, "error": str(exc)}
        except Exception as exc:  # defensive: a bug must not kill the loop
            return {"ok": False, "error": f"{type(exc).__name__}: {exc}"}

    # -- commands --------------------------------------------------------

    async def _cmd_ping(self, request: Dict[str, Any]) -> Dict[str, Any]:
        return {"ok": True, "pong": True}

    async def _cmd_submit(self, request: Dict[str, Any]) -> Dict[str, Any]:
        assert self.manager is not None
        scenario = request.get("scenario")
        if not isinstance(scenario, dict):
            return {"ok": False, "error": "submit needs a 'scenario' document"}
        job = self.manager.submit(scenario)
        if request.get("wait"):
            result = await job.result()
            return {
                "ok": True,
                "hash": job.spec_hash,
                "state": job.state,
                "result": result,
            }
        return {"ok": True, "hash": job.spec_hash, "state": job.state}

    async def _cmd_status(self, request: Dict[str, Any]) -> Dict[str, Any]:
        assert self.manager is not None
        spec_hash = request.get("hash")
        if spec_hash is None:
            return {
                "ok": True,
                "jobs": [job.snapshot() for job in self.manager.jobs()],
            }
        job = self.manager.get(spec_hash)
        if job is None:
            return {"ok": False, "error": f"unknown job {spec_hash!r}"}
        return {"ok": True, "job": job.snapshot()}

    async def _cmd_result(self, request: Dict[str, Any]) -> Dict[str, Any]:
        assert self.manager is not None
        spec_hash = request.get("hash")
        if not isinstance(spec_hash, str):
            return {"ok": False, "error": "result needs a 'hash'"}
        job = self.manager.get(spec_hash)
        if job is not None and not job.finished:
            return {"ok": False, "error": f"job {spec_hash[:12]} still {job.state}"}
        payload = self.manager.store.get(spec_hash)
        if payload is None:
            return {"ok": False, "error": f"no result for {spec_hash[:12]}"}
        return {"ok": True, "hash": spec_hash, "result": payload}

    async def _cmd_sweep(self, request: Dict[str, Any]) -> Dict[str, Any]:
        assert self.manager is not None
        from ..scenarios.grid import grid_points
        from ..scenarios.runner import resolve_sweep_point

        scenario = request.get("scenario")
        grid = request.get("grid")
        if not isinstance(scenario, dict) or not isinstance(grid, dict):
            return {
                "ok": False,
                "error": "sweep needs 'scenario' and 'grid' documents",
            }
        jobs = []
        points: List[Dict[str, Any]] = []
        for index, point in enumerate(grid_points(grid)):
            resolved = resolve_sweep_point(scenario, index, point)
            jobs.append(self.manager.submit(resolved.to_dict()))
            points.append(point)
        states = [job.state for job in jobs]
        rows: List[Dict[str, Any]] = []
        for point, job in zip(points, jobs):
            payload = await job.result()
            row = dict(point)
            row.update(payload["row"])
            rows.append(row)
        return {
            "ok": True,
            "rows": rows,
            "hashes": [job.spec_hash for job in jobs],
            "states": states,
        }

    async def _cmd_cancel(self, request: Dict[str, Any]) -> Dict[str, Any]:
        assert self.manager is not None
        spec_hash = request.get("hash")
        if not isinstance(spec_hash, str):
            return {"ok": False, "error": "cancel needs a 'hash'"}
        changed = await self.manager.cancel(spec_hash)
        return {"ok": True, "cancelled": changed}

    async def _cmd_stats(self, request: Dict[str, Any]) -> Dict[str, Any]:
        assert self.manager is not None
        return {
            "ok": True,
            "queue": self.manager.stats(),
            "store": self.manager.store.stats().to_dict(),
        }

    async def _cmd_metrics(self, request: Dict[str, Any]) -> Dict[str, Any]:
        assert self.manager is not None
        return {"ok": True, "metrics": self.manager.render_prometheus()}

    async def _cmd_shutdown(self, request: Dict[str, Any]) -> Dict[str, Any]:
        await self.stop()
        return {"ok": True, "stopping": True, "_close": True}


class ServiceClient:
    """Synchronous client: one TCP connection per request.

    Raises :class:`ServiceError` on transport failures and on
    ``{"ok": false}`` responses, so callers only see healthy payloads.
    """

    def __init__(
        self,
        host: str = DEFAULT_HOST,
        port: int = DEFAULT_PORT,
        timeout: Optional[float] = 60.0,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout

    def request(self, document: Dict[str, Any]) -> Dict[str, Any]:
        """Send one command document; return the (ok) response."""
        payload = json.dumps(document).encode("utf-8") + b"\n"
        try:
            with socket.create_connection(
                (self.host, self.port), timeout=self.timeout
            ) as conn:
                conn.sendall(payload)
                line = self._read_line(conn)
        except OSError as exc:
            raise ServiceError(
                f"cannot reach repro service at {self.host}:{self.port}: {exc}"
            ) from exc
        try:
            response = json.loads(line.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ServiceError(f"malformed response from service: {exc}") from exc
        if not isinstance(response, dict) or not response.get("ok"):
            error = "unknown error"
            if isinstance(response, dict):
                error = str(response.get("error", error))
            raise ServiceError(error)
        return response

    @staticmethod
    def _read_line(conn: socket.socket) -> bytes:
        chunks: List[bytes] = []
        total = 0
        while True:
            chunk = conn.recv(65536)
            if not chunk:
                break
            chunks.append(chunk)
            total += len(chunk)
            if chunk.endswith(b"\n"):
                break
            if total > MAX_LINE_BYTES:
                raise ServiceError("service response too large")
        return b"".join(chunks)

    # -- convenience wrappers -------------------------------------------

    def ping(self) -> bool:
        return bool(self.request({"cmd": "ping"}).get("pong"))

    def submit(
        self, scenario_doc: Dict[str, Any], wait: bool = False
    ) -> Dict[str, Any]:
        return self.request(
            {"cmd": "submit", "scenario": scenario_doc, "wait": wait}
        )

    def status(self, spec_hash: Optional[str] = None) -> Dict[str, Any]:
        document: Dict[str, Any] = {"cmd": "status"}
        if spec_hash is not None:
            document["hash"] = spec_hash
        return self.request(document)

    def result(self, spec_hash: str) -> Dict[str, Any]:
        return self.request({"cmd": "result", "hash": spec_hash})

    def sweep(
        self, scenario_doc: Dict[str, Any], grid: Dict[str, Any]
    ) -> Dict[str, Any]:
        return self.request(
            {"cmd": "sweep", "scenario": scenario_doc, "grid": grid}
        )

    def cancel(self, spec_hash: str) -> Dict[str, Any]:
        return self.request({"cmd": "cancel", "hash": spec_hash})

    def stats(self) -> Dict[str, Any]:
        return self.request({"cmd": "stats"})

    def metrics(self) -> str:
        """The daemon's Prometheus text exposition."""
        return str(self.request({"cmd": "metrics"})["metrics"])

    def shutdown(self) -> Dict[str, Any]:
        return self.request({"cmd": "shutdown"})


def run_server(
    store: Optional[str] = None,
    host: str = DEFAULT_HOST,
    port: int = DEFAULT_PORT,
    workers: int = 2,
    worker: str = "process",
    ready: Optional[Any] = None,
) -> Tuple[str, int]:
    """Blocking entry point for ``python -m repro serve``.

    Runs the server on a fresh event loop until a ``shutdown`` command
    or KeyboardInterrupt. ``ready`` (a callable) is invoked with
    ``(host, port)`` once the socket is bound — the CLI uses it to print
    the address, tests to learn an ephemeral port.
    """
    server = ServiceServer(
        store=store, host=host, port=port, workers=workers, worker=worker
    )

    async def _main() -> Tuple[str, int]:
        await server.start()
        if ready is not None:
            ready(server.host, server.port)
        await server.serve_forever()
        return server.host, server.port

    try:
        return asyncio.run(_main())
    except KeyboardInterrupt:
        return server.host, server.port
