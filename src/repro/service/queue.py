"""Asyncio job manager behind ``repro serve``.

A :class:`JobManager` accepts scenario documents, content-addresses each
one (:func:`~repro.service.hashing.scenario_content_hash`), and resolves
it through three tiers:

1. **store hit** — the hash is already in the :class:`ResultStore`; the
   job completes immediately in state ``cached`` without executing;
2. **in-flight dedupe** — an identical hash is already queued or
   running; the second submission attaches to the *same* job (one
   execution, any number of waiters);
3. **execute** — the document runs on a bounded worker pool (process,
   thread, or inline), and the result document is written back to the
   store before the job completes.

Workers that die mid-job (a crashed worker process) are retried on a
rebuilt pool up to ``retries`` times before the job fails. Progress is
observable per job: every state transition appends an event document to
``job.events`` and ``job.snapshot()`` is safe to serialise at any time.
"""

from __future__ import annotations

import asyncio
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Callable, Dict, List, Mapping, Optional, Union

from ..errors import ServiceError
from ..obs.clock import monotonic
from ..obs.registry import MetricsRegistry
from .hashing import scenario_content_hash
from .store import ResultStore

__all__ = ["Job", "JobManager", "JOB_STATES"]

#: Every state a job can report.
JOB_STATES = ("queued", "running", "done", "failed", "cached", "cancelled")

#: Terminal states — the job's future is resolved.
_TERMINAL = ("done", "failed", "cached", "cancelled")


def _execute_scenario_document(document: Dict[str, Any]) -> Dict[str, Any]:
    """Run one scenario document to its result document.

    Top level (hence picklable) so process workers can execute it; the
    imports stay local so a fresh worker process pays them once.
    """
    from ..scenarios.runner import ScenarioRunner
    from ..scenarios.specs import Scenario

    result = ScenarioRunner().run(Scenario.from_dict(document))
    return result.to_dict()


class Job:
    """One submitted scenario and its lifecycle.

    Attributes:
        spec_hash: content address of the submitted scenario.
        scenario_doc: the submitted document (plain JSON types).
        state: one of :data:`JOB_STATES`.
        events: append-only state-transition log — documents of the form
            ``{"seq": n, "state": ..., "detail": ...}``.
        waiters: how many submissions attached to this job (>= 1; grows
            when identical in-flight hashes dedupe onto it).
        attempts: executions started (retries increment this).
        error: failure description once ``state == "failed"``.
        created_at_monotonic: obs-clock submission time (the queue-latency
            histogram measures from here to the first ``running``).
    """

    def __init__(
        self,
        spec_hash: str,
        scenario_doc: Dict[str, Any],
        on_event: Optional[Callable[["Job", str, Optional[str]], None]] = None,
    ) -> None:
        self.spec_hash = spec_hash
        self.scenario_doc = scenario_doc
        self.state = "queued"
        self.events: List[Dict[str, Any]] = []
        self.waiters = 1
        self.attempts = 0
        self.error: Optional[str] = None
        self.created_at_monotonic = monotonic()
        self.first_running_at: Optional[float] = None
        self._on_event = on_event
        self.future: "asyncio.Future[Dict[str, Any]]" = (
            asyncio.get_running_loop().create_future()
        )
        self._event("queued")

    def _event(self, state: str, detail: Optional[str] = None) -> None:
        self.state = state
        self.events.append(
            {"seq": len(self.events), "state": state, "detail": detail}
        )
        if self._on_event is not None:
            self._on_event(self, state, detail)

    @property
    def finished(self) -> bool:
        return self.state in _TERMINAL

    def snapshot(self) -> Dict[str, Any]:
        """Plain-JSON view of the job (what ``repro status`` prints)."""
        return {
            "spec_hash": self.spec_hash,
            "state": self.state,
            "waiters": self.waiters,
            "attempts": self.attempts,
            "error": self.error,
            "events": [dict(event) for event in self.events],
        }

    async def result(self) -> Dict[str, Any]:
        """The result document (await; raises ServiceError on failure)."""
        return await asyncio.shield(self.future)


class JobManager:
    """Content-addressed scenario execution with dedupe and caching.

    Args:
        store: result store (instance, path, or ``None`` for the
            default location).
        max_workers: concurrent executions (bounded worker pool).
        worker: ``"process"`` (default: isolates crashes),
            ``"thread"``, or ``"inline"`` (run on the event loop —
            tests only).
        retries: extra attempts when a worker dies mid-job.
        execute: override of the execution callable (tests inject
            failures here); defaults to running the scenario.
    """

    def __init__(
        self,
        store: Optional[Union[ResultStore, str]] = None,
        max_workers: int = 2,
        worker: str = "process",
        retries: int = 1,
        execute: Optional[Callable[[Dict[str, Any]], Dict[str, Any]]] = None,
    ) -> None:
        if worker not in ("process", "thread", "inline"):
            raise ServiceError(f"unknown worker kind {worker!r}")
        if max_workers < 1:
            raise ServiceError("max_workers must be >= 1")
        self.store = ResultStore.open(store)
        self.max_workers = max_workers
        self.worker = worker
        self.retries = retries
        self._execute = execute or _execute_scenario_document
        self._jobs: Dict[str, Job] = {}
        self._slots = asyncio.Semaphore(max_workers)
        self._pool: Optional[Executor] = None
        self._tasks: "Dict[str, asyncio.Task[None]]" = {}
        self._counts = {state: 0 for state in JOB_STATES}
        #: Obs-clock instant this manager came up. A client that caches
        #: ``started_at_monotonic`` can detect a daemon restart: the new
        #: process reports a smaller value (and ``events_seq`` resets).
        self.started_at_monotonic = monotonic()
        #: Total job events emitted by this manager — monotonically
        #: increasing across every job, never reset while alive.
        self.events_seq = 0
        #: Always-on service registry (the daemon is wall-clock-bound
        #: anyway, so the determinism contract of the simulation layers
        #: does not apply here).
        self.registry = MetricsRegistry()

    def _on_job_event(
        self, job: Job, state: str, detail: Optional[str]
    ) -> None:
        self.events_seq += 1
        if state == "running" and job.first_running_at is None:
            now = monotonic()
            job.first_running_at = now
            self.registry.histogram("service.queue_latency_seconds").observe(
                now - job.created_at_monotonic
            )

    # -- pool management -------------------------------------------------

    def _ensure_pool(self) -> Optional[Executor]:
        if self.worker == "inline":
            return None
        if self._pool is None:
            if self.worker == "process":
                self._pool = ProcessPoolExecutor(max_workers=self.max_workers)
            else:
                self._pool = ThreadPoolExecutor(max_workers=self.max_workers)
        return self._pool

    def _discard_pool(self) -> None:
        """Drop a broken pool so the next attempt gets a fresh one."""
        if self._pool is not None:
            self._pool.shutdown(wait=False)
            self._pool = None

    async def close(self) -> None:
        """Cancel queued/running jobs and release the worker pool."""
        for task in list(self._tasks.values()):
            task.cancel()
        for task in list(self._tasks.values()):
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass
        self._tasks.clear()
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    # -- submission ------------------------------------------------------

    def submit(self, scenario_doc: Mapping[str, Any]) -> Job:
        """Submit one scenario document; returns its (possibly shared) job.

        Must be called from within a running event loop. Identical
        in-flight hashes dedupe onto the existing job; store hits
        complete immediately in state ``cached``.
        """
        document = dict(scenario_doc)
        spec_hash = scenario_content_hash(document)
        existing = self._jobs.get(spec_hash)
        if existing is not None and not existing.finished:
            existing.waiters += 1
            existing._event(existing.state, "deduplicated submission")
            return existing

        job = Job(spec_hash, document, on_event=self._on_job_event)
        # Keyed by hash: resubmitting a finished hash replaces its job
        # (the fresh one carries the fresh lifecycle) without duplicating
        # the listing; dict order keeps first-submission order.
        self._jobs[spec_hash] = job

        cached = self.store.get(spec_hash)
        if cached is not None:
            job._event("cached", "served from result store")
            job.future.set_result(cached)
            self._counts["cached"] += 1
            return job

        task = asyncio.get_running_loop().create_task(self._run(job))
        self._tasks[spec_hash] = task
        task.add_done_callback(
            lambda _t, key=spec_hash: self._tasks.pop(key, None)
        )
        return job

    async def _run(self, job: Job) -> None:
        try:
            async with self._slots:
                job._event("running")
                payload = await self._attempt(job)
            stored = self.store.put(job.spec_hash, payload)
            job._event("done")
            job.future.set_result(stored)
            self._counts["done"] += 1
        except asyncio.CancelledError:
            job._event("cancelled")
            if not job.future.done():
                job.future.set_exception(
                    ServiceError(f"job {job.spec_hash[:12]} cancelled")
                )
            self._counts["cancelled"] += 1
            raise
        except Exception as exc:
            job.error = f"{type(exc).__name__}: {exc}"
            job._event("failed", job.error)
            if not job.future.done():
                job.future.set_exception(
                    ServiceError(f"job {job.spec_hash[:12]} failed: {job.error}")
                )
            self._counts["failed"] += 1

    async def _attempt(self, job: Job) -> Dict[str, Any]:
        """Execute with retry-on-worker-crash semantics."""
        loop = asyncio.get_running_loop()
        last: Optional[BaseException] = None
        for attempt in range(self.retries + 1):
            job.attempts += 1
            if attempt:
                job._event("running", f"retry {attempt} after worker crash")
            try:
                if self.worker == "inline":
                    return self._execute(job.scenario_doc)
                pool = self._ensure_pool()
                return await loop.run_in_executor(
                    pool, self._execute, job.scenario_doc
                )
            except BrokenProcessPool as exc:
                # The worker died (OOM-kill, segfault, …), not the job
                # logic — rebuild the pool and try again.
                last = exc
                self._discard_pool()
        raise ServiceError(
            f"worker crashed {self.retries + 1} times running "
            f"{job.spec_hash[:12]}"
        ) from last

    # -- inspection ------------------------------------------------------

    def get(self, spec_hash: str) -> Optional[Job]:
        return self._jobs.get(spec_hash)

    def jobs(self) -> List[Job]:
        """All tracked jobs (one per hash), in first-submission order."""
        return list(self._jobs.values())

    async def cancel(self, spec_hash: str) -> bool:
        """Cancel a queued/running job; returns whether anything changed."""
        job = self._jobs.get(spec_hash)
        task = self._tasks.get(spec_hash)
        if job is None or job.finished or task is None:
            return False
        task.cancel()
        try:
            await task
        except asyncio.CancelledError:
            pass
        return True

    def stats(self) -> Dict[str, Any]:
        """Plain-JSON counters (jobs by terminal state + live view).

        ``started_at_monotonic`` / ``events_seq`` let a polling client
        detect daemon restarts: a restart resets both, so a response
        whose ``events_seq`` went backwards (or whose start instant
        changed) comes from a different process.
        """
        live = {"queued": 0, "running": 0}
        for job in self._jobs.values():
            if job.state in live:
                live[job.state] += 1
        doc: Dict[str, Any] = {"jobs": len(self._jobs)}
        doc.update(live)
        for state in _TERMINAL:
            doc[state] = self._counts[state]
        doc["started_at_monotonic"] = self.started_at_monotonic
        doc["uptime_seconds"] = monotonic() - self.started_at_monotonic
        doc["events_seq"] = self.events_seq
        return doc

    def render_prometheus(self) -> str:
        """Prometheus text exposition of the manager's current state.

        Job-state gauges, the store hit rate (cached vs. executed
        completions), store size, uptime, the global event sequence, and
        the queued->running latency histogram.
        """
        registry = self.registry
        stats = self.stats()
        registry.gauge("service.jobs").set(stats["jobs"])
        registry.gauge("service.jobs_queued").set(stats["queued"])
        registry.gauge("service.jobs_running").set(stats["running"])
        for state in _TERMINAL:
            registry.gauge(f"service.jobs_{state}").set(self._counts[state])
        registry.gauge("service.events_seq").set(self.events_seq)
        registry.gauge("service.uptime_seconds").set(stats["uptime_seconds"])
        hits = self._counts["cached"]
        completed = hits + self._counts["done"]
        if completed:
            registry.gauge("service.store_hit_rate").set(hits / completed)
        store_stats = self.store.stats()
        registry.gauge("service.store_entries").set(store_stats.entries)
        registry.gauge("service.store_bytes").set(store_stats.total_bytes)
        return registry.render_prometheus()
