"""Content-addressed, crash-safe filesystem store for scenario results.

The store maps a scenario content hash (see
:mod:`repro.service.hashing`) to one JSON *envelope* holding the
serialised result artifact — a
:class:`~repro.scenarios.runner.ScenarioResult` document (which embeds
any :class:`~repro.attacks.report.AttackReport` or
:class:`~repro.evolution.trajectory.Trajectory`), or a bare sweep row.

Layout (under ``~/.cache/repro``, the ``REPRO_STORE`` env var, or an
explicit ``--store PATH``)::

    <root>/objects/<hash[:2]>/<hash>.json    # one envelope per result
    <root>/quarantine/<basename>.<n>         # corrupted entries, kept

Design invariants:

* **Atomic writes** — every entry is written to a same-directory temp
  file and published with ``os.replace``, so readers never observe a
  partial entry and concurrent writers of the same key are safe (the
  results are deterministic, so last-writer-wins is also
  content-identical). This file is the *only* module allowed to open
  store paths for writing — reprolint rule RPR008 enforces it.
* **Verified reads** — envelopes carry a sha256 checksum over the
  canonical payload JSON; a read that fails to parse or verify moves the
  entry to ``quarantine/`` and returns ``None``, so a corrupted cache
  degrades to a recompute, never a crash and never a wrong result.
* **LRU eviction** — reads freshen the entry's mtime (best-effort);
  :meth:`ResultStore.gc` drops least-recently-used entries until the
  configured entry/byte bounds hold.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Union

from ..errors import ServiceError
from .hashing import canonical_json

__all__ = [
    "DEFAULT_STORE_ENV",
    "ResultStore",
    "StoreStats",
    "default_store_path",
]

#: Environment variable overriding the default store location (the
#: pytest suite points it at a per-test ``tmp_path``).
DEFAULT_STORE_ENV = "REPRO_STORE"

#: Layout version of the on-disk envelope; mismatched entries quarantine.
STORE_SCHEMA_VERSION = 1

_HEX_DIGITS = frozenset("0123456789abcdef")


def default_store_path() -> Path:
    """``$REPRO_STORE`` when set, else ``~/.cache/repro``."""
    override = os.environ.get(DEFAULT_STORE_ENV)
    if override:
        return Path(override)
    return Path.home() / ".cache" / "repro"


def _check_key(key: str) -> str:
    if (
        not isinstance(key, str)
        or len(key) != 64
        or not set(key) <= _HEX_DIGITS
    ):
        raise ServiceError(
            f"store keys are 64-char lowercase sha256 hex digests, got {key!r}"
        )
    return key


@dataclass(frozen=True)
class StoreStats:
    """Snapshot of the store's footprint (``repro store stats``)."""

    root: str
    entries: int
    total_bytes: int
    quarantined: int

    def to_dict(self) -> Dict[str, Any]:
        return {
            "root": self.root,
            "entries": self.entries,
            "total_bytes": self.total_bytes,
            "quarantined": self.quarantined,
        }


class ResultStore:
    """Filesystem result store, safe for concurrent multi-process use."""

    def __init__(self, root: Optional[Union[str, Path]] = None) -> None:
        self.root = Path(root) if root is not None else default_store_path()
        self._objects = self.root / "objects"
        self._quarantine = self.root / "quarantine"
        self._objects.mkdir(parents=True, exist_ok=True)
        self._quarantine.mkdir(parents=True, exist_ok=True)
        self._tmp_counter = itertools.count()

    @classmethod
    def open(
        cls, source: Union["ResultStore", str, Path, None]
    ) -> "ResultStore":
        """Coerce ``source`` (store, path, or None = default) to a store."""
        if isinstance(source, ResultStore):
            return source
        return cls(source)

    # -- paths ---------------------------------------------------------------

    def path_for(self, key: str) -> Path:
        """Where the envelope for ``key`` lives (existing or not)."""
        key = _check_key(key)
        return self._objects / key[:2] / f"{key}.json"

    def __contains__(self, key: str) -> bool:
        return self.path_for(key).is_file()

    def keys(self) -> Iterator[str]:
        """All stored keys, sorted (stable across processes)."""
        for path in sorted(self._objects.glob("*/*.json")):
            yield path.stem

    def __len__(self) -> int:
        return sum(1 for _ in self.keys())

    # -- write path ----------------------------------------------------------

    def put(
        self, key: str, payload: Any, kind: str = "scenario-result"
    ) -> Any:
        """Atomically store ``payload`` under ``key``; returns the
        normalised payload as any later :meth:`get` will see it.

        The payload is normalised through its canonical JSON first, so
        what the caller keeps and what the store serves are structurally
        identical — the byte-identity the dedupe guarantee rests on.
        """
        path = self.path_for(key)
        # Payloads are result documents, which may legitimately carry
        # non-finite floats (e.g. -inf greedy prefix objectives); only
        # the *hash* domain (specs, points) must be strictly finite.
        canonical_payload = canonical_json(payload, allow_non_finite=True)
        envelope = {
            "schema_version": STORE_SCHEMA_VERSION,
            "spec_hash": key,
            "kind": kind,
            "checksum": _payload_checksum(canonical_payload),
            "payload": json.loads(canonical_payload),
        }
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.parent / (
            f".{key}.{os.getpid()}.{next(self._tmp_counter)}.tmp"
        )
        try:
            with tmp.open("w", encoding="utf-8") as handle:
                json.dump(envelope, handle, sort_keys=True)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, path)
        finally:
            if tmp.exists():  # pragma: no cover - only on write failure
                tmp.unlink()
        return envelope["payload"]

    # -- read path -----------------------------------------------------------

    def get(self, key: str) -> Optional[Any]:
        """The stored payload for ``key``, or ``None``.

        ``None`` means "recompute": the entry is absent, or it failed
        verification and was quarantined.
        """
        envelope = self.get_envelope(key)
        return None if envelope is None else envelope["payload"]

    def get_envelope(self, key: str) -> Optional[Dict[str, Any]]:
        """Like :meth:`get` but returns the full verified envelope."""
        path = self.path_for(key)
        try:
            raw = path.read_text(encoding="utf-8")
        except FileNotFoundError:
            return None
        except OSError:
            self._quarantine_entry(path, "unreadable")
            return None
        try:
            envelope = json.loads(raw)
        except json.JSONDecodeError:
            self._quarantine_entry(path, "invalid-json")
            return None
        if not self._verify(key, envelope):
            self._quarantine_entry(path, "checksum-mismatch")
            return None
        self._touch(path)
        return envelope

    @staticmethod
    def _verify(key: str, envelope: Any) -> bool:
        if not isinstance(envelope, dict):
            return False
        if envelope.get("schema_version") != STORE_SCHEMA_VERSION:
            return False
        if envelope.get("spec_hash") != key:
            return False
        if "payload" not in envelope or "checksum" not in envelope:
            return False
        try:
            expected = _payload_checksum(
                canonical_json(envelope["payload"], allow_non_finite=True)
            )
        except Exception:
            return False
        return envelope["checksum"] == expected

    @staticmethod
    def _touch(path: Path) -> None:
        """Freshen mtime for LRU ordering; best-effort under concurrency."""
        try:
            os.utime(path, None)
        except OSError:  # pragma: no cover - raced with gc/quarantine
            pass

    def _quarantine_entry(self, path: Path, reason: str) -> None:
        """Move a bad entry aside (never delete evidence, never raise)."""
        for attempt in itertools.count():
            target = self._quarantine / f"{path.name}.{reason}.{attempt}"
            if target.exists():
                continue
            try:
                os.replace(path, target)
            except FileNotFoundError:  # pragma: no cover - raced
                pass
            except OSError:  # pragma: no cover - cross-device fallback
                try:
                    path.unlink()
                except OSError:
                    pass
            return

    # -- maintenance ---------------------------------------------------------

    def delete(self, key: str) -> bool:
        """Remove ``key``; returns whether an entry existed."""
        try:
            self.path_for(key).unlink()
            return True
        except FileNotFoundError:
            return False

    def stats(self) -> StoreStats:
        entries = 0
        total = 0
        for path in self._objects.glob("*/*.json"):
            try:
                total += path.stat().st_size
            except OSError:  # pragma: no cover - raced with eviction
                continue
            entries += 1
        quarantined = sum(1 for _ in self._quarantine.iterdir())
        return StoreStats(
            root=str(self.root),
            entries=entries,
            total_bytes=total,
            quarantined=quarantined,
        )

    def gc(
        self,
        max_entries: Optional[int] = None,
        max_bytes: Optional[int] = None,
    ) -> List[str]:
        """Evict least-recently-used entries until within bounds.

        Returns the evicted keys (may include entries another process
        already removed — eviction is idempotent).
        """
        if max_entries is not None and max_entries < 0:
            raise ServiceError("gc max_entries must be >= 0")
        if max_bytes is not None and max_bytes < 0:
            raise ServiceError("gc max_bytes must be >= 0")
        records = []
        for path in self._objects.glob("*/*.json"):
            try:
                stat = path.stat()
            except OSError:  # pragma: no cover - raced with eviction
                continue
            records.append((stat.st_mtime, path.name, path, stat.st_size))
        # Oldest first; name breaks mtime ties deterministically.
        records.sort()
        entries = len(records)
        total = sum(record[3] for record in records)
        evicted: List[str] = []
        for _, _, path, size in records:
            over_entries = max_entries is not None and entries > max_entries
            over_bytes = max_bytes is not None and total > max_bytes
            if not (over_entries or over_bytes):
                break
            try:
                path.unlink()
            except FileNotFoundError:  # pragma: no cover - raced
                pass
            evicted.append(path.stem)
            entries -= 1
            total -= size
        return evicted


def _payload_checksum(canonical_payload: str) -> str:
    return hashlib.sha256(canonical_payload.encode("utf-8")).hexdigest()
