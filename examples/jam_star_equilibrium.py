#!/usr/bin/env python
"""Jam the hub of a star Nash equilibrium and price the damage.

The star is a Nash equilibrium of the creation game under the conditions
of Thm 8 — every leaf is happy with its single channel to the center *as
long as routing is honest*. This example drops that assumption (footnote 1
of the paper): a slow-jamming adversary opens two cheap channels, routes
max-duration HTLCs through the hub, and holds them so the hub's outbound
balances and HTLC slots are pinned while honest traffic fails around it.

Everything is one declarative :class:`repro.Scenario` with an ``attack``
stage: the runner simulates the identical honest workload twice (baseline
and attacked) and reports the victim's revenue loss, the honest
success-rate degradation, and the locked-liquidity time-integral — the
opportunity-cost channel Section II-C prices.

Run:
    python examples/jam_star_equilibrium.py
"""

from repro import (
    AttackSpec,
    FeeSpec,
    Scenario,
    ScenarioRunner,
    SimulationSpec,
    TopologySpec,
    WorkloadSpec,
)
from repro.analysis import format_table

scenario = Scenario(
    # A star of 8 leaves around "center", 10 coins per channel side —
    # the Section IV equilibrium topology with its revenue hub.
    topology=TopologySpec("star", {"leaves": 8, "balance": 10.0}),
    # Honest traffic: Poisson arrivals, Zipf-skewed receivers, sub-coin
    # payment sizes, Lightning-style linear fees.
    workload=WorkloadSpec(
        "poisson",
        {
            "rate": 1.0,
            "zipf_s": 1.0,
            "sizes": {"kind": "truncated-exponential", "scale": 0.5, "high": 2.0},
        },
    ),
    fee=FeeSpec("linear", {"base": 0.01, "rate": 0.001}),
    # HTLC payment mode: honest payments lock in-flight capital too, so
    # attacker and honest HTLCs contend for the same slots and balances.
    simulation=SimulationSpec(horizon=40.0, payment_mode="htlc", htlc_hold_mean=0.2),
    # The adversary: 1000 coins of capital, auto-targeting the
    # highest-betweenness node (the center), all defaults otherwise.
    attack=AttackSpec("slow-jamming", {"budget": 1000.0}),
    name="jam-the-star",
    seed=7,
)

result = ScenarioRunner().run(scenario)
report = result.attack

print(report.summary())
print()
print(format_table([report.to_row()], title="attack report"))
print()
print(
    f"The jammer committed {report.budget_spent:.0f} of its "
    f"{report.budget:.0f} coin budget (all recoverable — jams never settle,"
    f" so it paid {report.attacker_fees_paid:.2f} in fees) and destroyed "
    f"{report.victim_revenue_loss_fraction:.0%} of the hub's routing "
    "revenue. A Nash-stable topology is not an attack-resilient one."
)

# The same comparison across all three Section IV equilibria, one line:
#   python -m repro attack --compare --budgets 250 1000 --executor process
