#!/usr/bin/env python
"""Quickstart: find the optimal way to join a payment channel network.

Builds a synthetic Lightning-like snapshot, models a new user with a
budget, runs Algorithm 1 (greedy with fixed funds per channel), and prints
the chosen channels with a breakdown of the utility components.

Run:
    python examples/quickstart.py
"""

from repro import JoiningUserModel, ModelParameters, greedy_fixed_funds
from repro.analysis import format_table
from repro.snapshots import barabasi_albert_snapshot


def main() -> None:
    # 1. A 50-node preferential-attachment snapshot (heavy-tailed degrees,
    #    lognormal capacities) standing in for a public LN snapshot.
    graph = barabasi_albert_snapshot(50, attachments=2, seed=7)
    print(f"network: {len(graph)} nodes, {graph.num_channels()} channels")

    # 2. Model parameters: on-chain cost C, opportunity rate r, fees, the
    #    Zipf transaction skew s, and traffic rates (Section II).
    params = ModelParameters(
        onchain_cost=0.5,
        opportunity_rate=0.01,
        fee_avg=0.5,
        fee_out_avg=0.1,
        total_tx_rate=100.0,
        user_tx_rate=5.0,
        zipf_s=1.0,
    )

    # 3. The joining user's utility model (Section II-C).
    model = JoiningUserModel(graph, "me", params)

    # 4. Algorithm 1: budget B_u = 5, lock l1 = 1 coin per channel.
    result = greedy_fixed_funds(model, budget=5.0, lock=1.0)
    print(result.summary())

    # 5. Break the chosen strategy down.
    strategy = result.strategy
    rows = [
        {
            "component": "expected routing revenue (E_rev)",
            "value": model.expected_revenue(strategy),
        },
        {
            "component": "expected fees paid (E_fees)",
            "value": model.expected_fees(strategy),
        },
        {
            "component": "channel costs (sum L_u)",
            "value": model.channel_costs(strategy),
        },
        {"component": "utility U", "value": model.utility(strategy)},
    ]
    print()
    print(format_table(rows, title="utility breakdown"))

    print()
    print(
        format_table(
            [
                {
                    "peer": str(action.peer),
                    "peer_degree": graph.degree(action.peer),
                    "locked": action.locked,
                }
                for action in strategy
            ],
            title="chosen channels",
        )
    )


if __name__ == "__main__":
    main()
