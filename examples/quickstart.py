#!/usr/bin/env python
"""Quickstart: find the optimal way to join a payment channel network.

Describes the whole experiment as one declarative :class:`repro.Scenario`
— a synthetic Lightning-like snapshot, a new user with a budget, and
Algorithm 1 (greedy with fixed funds per channel) — runs it through the
scenario API, and prints the chosen channels with a breakdown of the
utility components.

Run:
    python examples/quickstart.py
"""

from repro import (
    AlgorithmSpec,
    JoiningUserModel,
    ModelParameters,
    Scenario,
    ScenarioRunner,
    TopologySpec,
)
from repro.analysis import format_table

# Model parameters: on-chain cost C, opportunity rate r, fees, the Zipf
# transaction skew s, and traffic rates (Section II).
MODEL = dict(
    onchain_cost=0.5,
    opportunity_rate=0.01,
    fee_avg=0.5,
    fee_out_avg=0.1,
    total_tx_rate=100.0,
    user_tx_rate=5.0,
    zipf_s=1.0,
)


def main() -> None:
    # One declarative experiment record: a 50-node preferential-attachment
    # snapshot (heavy-tailed degrees, lognormal capacities) standing in
    # for a public LN snapshot, plus Algorithm 1 with budget B_u = 5 and
    # lock l1 = 1 coin per channel. The single seed makes the whole run
    # reproducible — save scenario.to_json() and you can rerun it later.
    scenario = Scenario(
        name="quickstart",
        topology=TopologySpec("ba", {"n": 50, "attachments": 2}),
        algorithm=AlgorithmSpec(
            "greedy",
            params={"budget": 5.0, "lock": 1.0},
            user="me",
            model=MODEL,
        ),
        seed=7,
    )

    result = ScenarioRunner().run(scenario)
    graph = result.graph
    print(f"network: {len(graph)} nodes, {graph.num_channels()} channels")
    print(result.summary())

    # Break the chosen strategy down by rebuilding the utility model the
    # runner used (Section II-C) on the same graph and parameters.
    strategy = result.optimisation.strategy
    model = JoiningUserModel(graph, "me", ModelParameters(**MODEL))
    rows = [
        {
            "component": "expected routing revenue (E_rev)",
            "value": model.expected_revenue(strategy),
        },
        {
            "component": "expected fees paid (E_fees)",
            "value": model.expected_fees(strategy),
        },
        {
            "component": "channel costs (sum L_u)",
            "value": model.channel_costs(strategy),
        },
        {"component": "utility U", "value": model.utility(strategy)},
    ]
    print()
    print(format_table(rows, title="utility breakdown"))

    print()
    print(
        format_table(
            [
                {
                    "peer": str(action.peer),
                    "peer_degree": graph.degree(action.peer),
                    "locked": action.locked,
                }
                for action in strategy
            ],
            title="chosen channels",
        )
    )


if __name__ == "__main__":
    main()
