#!/usr/bin/env python
"""Walk through the paper's Figure 2 joining example step by step.

E joins a PCN with existing users A, B, C, D (a path A-B-C-D here):
E plans one monthly transaction to B; A makes nine monthly transactions
with D. E's budget covers two channels plus 19 spare coins. The paper's
answer: open channels to A and D with sizes 10 and 9.

The script scores every two-channel strategy, shows why {A, D} wins, and
verifies by simulation that the 10/9 funding carries the whole month.

Run:
    python examples/figure2_walkthrough.py
"""

from itertools import combinations

from repro import JoiningUserModel, ModelParameters
from repro.analysis import format_table
from repro.core import Action, Strategy
from repro.network import ChannelGraph, ConstantFee
from repro.simulation import SimulationEngine
from repro.simulation.events import PaymentEvent
from repro.transactions import EmpiricalDistribution


def main() -> None:
    graph = ChannelGraph()
    for u, v in [("A", "B"), ("B", "C"), ("C", "D")]:
        graph.add_channel(u, v, 20.0, 20.0)

    params = ModelParameters(
        onchain_cost=1.0,
        opportunity_rate=0.001,
        fee_avg=1.0,
        fee_out_avg=1.0,
        total_tx_rate=9.0,   # A -> D, nine per month
        user_tx_rate=1.0,    # E -> B, once per month
        zipf_s=1.0,
    )
    model = JoiningUserModel(
        graph,
        "E",
        params,
        distribution=EmpiricalDistribution(
            {"A": {"D": 1.0}, "B": {"A": 1.0}, "C": {"A": 1.0}, "D": {"A": 1.0}}
        ),
        own_probs={"B": 1.0},
        sender_rates={"A": 9.0, "B": 0.0, "C": 0.0, "D": 0.0},
    )

    rows = []
    for pair in combinations(["A", "B", "C", "D"], 2):
        strategy = Strategy([Action(p, 9.5) for p in pair])
        rows.append(
            {
                "channels": "+".join(pair),
                "E_rev": model.expected_revenue(strategy),
                "E_fees": model.expected_fees(strategy),
                "utility": model.utility(strategy),
            }
        )
    rows.sort(key=lambda r: r["utility"], reverse=True)
    print(format_table(rows, title="every two-channel strategy for E"))
    print()
    print(f"winner: {rows[0]['channels']}  (the paper's answer: A+D)")

    # simulate the month with the paper's 10 / 9 funding
    chosen = Strategy([Action("A", 10.0), Action("D", 9.0)])
    sim_graph = model.with_strategy(chosen)
    engine = SimulationEngine(sim_graph, fee=ConstantFee(0.0))
    engine.schedule(PaymentEvent(time=0.5, sender="E", receiver="B", amount=1.0))
    for i in range(9):
        engine.schedule(
            PaymentEvent(time=1.0 + i, sender="A", receiver="D", amount=1.0)
        )
    metrics = engine.run()
    print()
    print(
        f"simulated month with funding A:10 D:9 -> "
        f"{metrics.succeeded}/{metrics.attempted} payments succeeded"
    )
    ed = sim_graph.channels_between("E", "D")[0]
    print(
        f"E's balance toward D after the month: {ed.balance('E'):g} "
        "(exactly depleted — 9 was the minimum viable funding)"
    )


if __name__ == "__main__":
    main()
