#!/usr/bin/env python
"""Scenario service demo: content-addressed sweeps through `repro serve`.

Starts the service daemon on an ephemeral localhost port, submits a
50-point parameter sweep **twice**, and prints the cache telemetry: the
first pass computes every point; the second pass is served entirely from
the content-addressed result store (states all ``cached``, rows
byte-identical), because each grid point's resolved scenario hashes to
the same key both times.

Run:
    python examples/serve_sweep.py

The ``--smoke`` mode is the CI service smoke test: it connects to an
*already running* daemon (``--port``), submits one tiny scenario, and
asserts (1) the daemon's result row matches a direct in-process
``ScenarioRunner.run()`` and (2) resubmitting the identical document is
served from the store with a byte-identical payload.

    python -m repro serve --port 8931 --store .ci-store --worker thread &
    python examples/serve_sweep.py --smoke --port 8931
"""

import argparse
import asyncio
import json
import sys
import tempfile
import threading

from repro.scenarios import Scenario, ScenarioRunner, SimulationSpec, TopologySpec
from repro.scenarios.specs import FeeSpec, WorkloadSpec
from repro.service import ServiceClient, ServiceServer


def demo_scenario() -> Scenario:
    return Scenario(
        name="serve-sweep-demo",
        topology=TopologySpec("star", {"leaves": 4, "balance": 5.0}),
        workload=WorkloadSpec("poisson", {"zipf_s": 1.0}),
        fee=FeeSpec("linear", {"base": 0.01, "rate": 0.001}),
        simulation=SimulationSpec(horizon=5.0),
        seed=7,
    )


#: 10 x 5 = 50 grid points.
GRID = {
    "topology.params.leaves": [3, 4, 5, 6, 7, 8, 9, 10, 11, 12],
    "workload.params.zipf_s": [0.5, 1.0, 1.5, 2.0, 2.5],
}


def start_daemon(store: str):
    """Host a daemon on an ephemeral port in a background thread."""
    started = threading.Event()
    box = {}

    def host():
        async def main():
            server = ServiceServer(store=store, port=0, worker="thread", workers=4)
            await server.start()
            box["port"] = server.port
            started.set()
            await server.serve_forever()

        asyncio.run(main())

    thread = threading.Thread(target=host, daemon=True)
    thread.start()
    if not started.wait(timeout=60):
        raise RuntimeError("daemon failed to start")
    return box["port"], thread


def run_demo() -> int:
    with tempfile.TemporaryDirectory() as store:
        port, thread = start_daemon(store)
        client = ServiceClient(port=port, timeout=600.0)
        print(f"daemon up on 127.0.0.1:{port}, store at {store}")

        doc = demo_scenario().to_dict()
        points = len(GRID["topology.params.leaves"]) * len(
            GRID["workload.params.zipf_s"]
        )

        print(f"pass 1: sweeping {points} points ...")
        first = client.sweep(doc, GRID)
        computed = sum(1 for s in first["states"] if s != "cached")
        print(f"  computed {computed}/{points}, "
              f"cached {points - computed}/{points}")

        print("pass 2: identical sweep ...")
        second = client.sweep(doc, GRID)
        cached = sum(1 for s in second["states"] if s == "cached")
        print(f"  computed {points - cached}/{points}, "
              f"cached {cached}/{points}")

        identical = json.dumps(first["rows"], sort_keys=True) == json.dumps(
            second["rows"], sort_keys=True
        )
        print(f"rows byte-identical across passes: {identical}")
        stats = client.stats()
        print(f"store: {stats['store']['entries']} entries, "
              f"{stats['store']['total_bytes']} bytes")
        client.shutdown()
        thread.join(timeout=30)
        if not identical or cached != points:
            print("FAILED: second pass was not fully cached", file=sys.stderr)
            return 1
        return 0


def run_smoke(host: str, port: int) -> int:
    """CI smoke: parity with a direct run + cache hit on resubmit."""
    client = ServiceClient(host=host, port=port, timeout=300.0)
    assert client.ping(), "daemon not reachable"

    scenario = demo_scenario()
    first = client.submit(scenario.to_dict(), wait=True)
    direct = ScenarioRunner().run(scenario)

    remote_row = first["result"]["row"]
    local_row = json.loads(json.dumps(direct.row))
    assert remote_row == local_row, (
        f"daemon row diverged from direct run:\n{remote_row}\n{local_row}"
    )

    second = client.submit(scenario.to_dict(), wait=True)
    assert second["state"] == "cached", (
        f"resubmission not served from store: state={second['state']}"
    )
    assert json.dumps(second["result"], sort_keys=True) == json.dumps(
        first["result"], sort_keys=True
    ), "cached payload not byte-identical to computed payload"

    print("service smoke ok: parity with direct run, resubmit cached")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="connect to a running daemon and run the CI assertions",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8923)
    args = parser.parse_args()
    if args.smoke:
        return run_smoke(args.host, args.port)
    return run_demo()


if __name__ == "__main__":
    sys.exit(main())
