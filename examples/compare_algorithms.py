#!/usr/bin/env python
"""Compare all Section III optimisers on one snapshot.

Runs Algorithm 1 (greedy, fixed funds), Algorithm 2 (exhaustive over
discretised funds), the continuous benefit-function local search, and the
brute-force optimum on a small synthetic network, and prints quality vs
cost — the practical version of the trade-off the paper highlights
("depending on the number of assumptions ... the user has a range of
solutions").

Run:
    python examples/compare_algorithms.py
"""

from repro import JoiningUserModel, ModelParameters
from repro.analysis import format_table
from repro.obs.clock import monotonic
from repro.core import (
    brute_force,
    continuous_local_search,
    exhaustive_discrete,
    greedy_fixed_funds,
)
from repro.snapshots import barabasi_albert_snapshot

BUDGET = 4.2


def main() -> None:
    graph = barabasi_albert_snapshot(15, attachments=2, seed=3)
    params = ModelParameters(
        onchain_cost=0.4,
        opportunity_rate=0.001,
        fee_avg=1.0,
        fee_out_avg=0.05,
        total_tx_rate=100.0,
        user_tx_rate=1.0,
        zipf_s=1.0,
    )
    # fixed-rate mode: the regime where the paper's guarantees apply
    model = JoiningUserModel(graph, "me", params, revenue_mode="fixed-rate")

    runs = [
        ("Alg 1 greedy (l1=1)",
         lambda: greedy_fixed_funds(model, budget=BUDGET, lock=1.0)),
        ("Alg 2 exhaustive (m=1)",
         lambda: exhaustive_discrete(model, budget=BUDGET, granularity=1.0)),
        ("continuous local search",
         lambda: continuous_local_search(model, budget=BUDGET)),
        ("brute force (optimum over the lock=1 action set)",
         lambda: brute_force(model, budget=BUDGET, lock=1.0)),
    ]

    rows = []
    for name, run in runs:
        start = monotonic()
        result = run()
        elapsed = monotonic() - start
        rows.append(
            {
                "algorithm": name,
                "objective": result.objective_value,
                "utility_U": result.utility,
                "channels": len(result.strategy),
                "evaluations": result.evaluations,
                "seconds": elapsed,
            }
        )
    print(format_table(rows, title=f"Section III optimisers, budget {BUDGET}"))

    optimum = rows[-1]["objective"]
    greedy_row = rows[0]
    if optimum > 0:
        print()
        print(
            f"greedy/optimum ratio: {greedy_row['objective'] / optimum:.3f} "
            f"(Thm 4 guarantees >= {1 - 1 / 2.718281828:.3f})"
        )


if __name__ == "__main__":
    main()
