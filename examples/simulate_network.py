#!/usr/bin/env python
"""Validate the analytic model against the discrete-event simulator.

Describes the experiment as one declarative :class:`repro.Scenario`
(topology + workload + fee + simulation), predicts per-node routing
revenue with Eq. 3, runs the scenario through the runner, and compares
predictions with what intermediaries actually earn. A scenario *sweep*
over payment sizes then shows how size interacts with channel capacities
(the reduced-subgraph effect of Section II-B).

Run:
    python examples/simulate_network.py
"""

from repro import (
    FeeSpec,
    Scenario,
    ScenarioRunner,
    SimulationSpec,
    TopologySpec,
    WorkloadSpec,
)
from repro.analysis import format_table
from repro.transactions import ModifiedZipf, intermediary_traffic

FEE = 0.25
HORIZON = 300.0


def main() -> None:
    runner = ScenarioRunner()
    scenario = Scenario(
        name="analytic-vs-simulated",
        topology=TopologySpec(
            "ba", {"n": 15, "capacity_mu": 6.0, "capacity_sigma": 0.2}
        ),
        workload=WorkloadSpec(
            "poisson",
            {"rate": 1.0, "zipf_s": 1.0, "sizes": {"kind": "fixed", "size": 1.0}},
        ),
        fee=FeeSpec("constant", {"fee": FEE}),
        simulation=SimulationSpec(horizon=HORIZON, fee_forwarding=False),
        seed=5,
    )

    result = runner.run(scenario)
    graph = result.graph
    metrics = result.metrics
    print(metrics.summary())
    print()

    # --- analytic predictions (Eq. 3) on the CSR view of the same graph ---
    distribution = ModifiedZipf(graph, s=1.0)
    per_sender = {node: 1.0 for node in graph.nodes}
    predicted_traffic = intermediary_traffic(
        graph, distribution, per_sender_rates=per_sender
    )

    top = sorted(predicted_traffic, key=predicted_traffic.get, reverse=True)[:8]
    rows = [
        {
            "node": str(node),
            "degree": graph.degree(node),
            "analytic_Erev": FEE * predicted_traffic[node],
            "simulated_rate": metrics.revenue_rate(node),
        }
        for node in top
    ]
    print(format_table(rows, title="Eq. 3 prediction vs simulated revenue"))

    # --- capacity effects: larger payments fail more --------------------------
    # One sweep over the workload's size document. Topology and workload
    # seeds are pinned in the spec so every point runs the *same* graph
    # and arrival pattern — only the payment size varies, isolating the
    # reduced-subgraph effect.
    print()
    sweep_rows = runner.run_sweep(
        scenario.with_overrides(
            {
                "simulation.horizon": 50.0,
                "topology.params.seed": 5,
                "workload.params.seed": 13,
            }
        ),
        grid={"workload.params.sizes.size": [0.5, 2.0, 8.0, 32.0]},
    )
    print(
        format_table(
            [
                {
                    "payment_size": row["workload.params.sizes.size"],
                    "success_rate": row["success_rate"],
                    "failures": row["failed"],
                }
                for row in sweep_rows
            ],
            title="payment size vs success (the reduced subgraph G' shrinks)",
        )
    )


if __name__ == "__main__":
    main()
