#!/usr/bin/env python
"""Validate the analytic model against the discrete-event simulator.

Generates a snapshot, predicts per-node routing revenue with Eq. 3 and
per-edge rates with Eq. 2, then runs a Poisson payment workload through
the simulator and compares predictions with what intermediaries actually
earn. Also shows how payment size interacts with channel capacities (the
reduced-subgraph effect of Section II-B).

Run:
    python examples/simulate_network.py
"""

from repro.analysis import format_table
from repro.network import ConstantFee
from repro.simulation import SimulationEngine
from repro.snapshots import barabasi_albert_snapshot
from repro.transactions import (
    FixedSize,
    ModifiedZipf,
    PoissonWorkload,
    intermediary_traffic,
)

FEE = 0.25
HORIZON = 300.0


def main() -> None:
    graph = barabasi_albert_snapshot(
        15, seed=5, capacity_mu=6.0, capacity_sigma=0.2
    )
    distribution = ModifiedZipf(graph, s=1.0)
    per_sender = {node: 1.0 for node in graph.nodes}

    # --- analytic predictions (Eq. 3) -------------------------------------
    predicted_traffic = intermediary_traffic(
        graph, distribution, per_sender_rates=per_sender
    )

    # --- simulation ---------------------------------------------------------
    workload = PoissonWorkload(
        distribution, per_sender, sizes=FixedSize(1.0), seed=11
    )
    engine = SimulationEngine(
        graph.copy(), fee=ConstantFee(FEE), fee_forwarding=False
    )
    engine.schedule_workload(workload, HORIZON)
    metrics = engine.run(until=HORIZON)
    print(metrics.summary())
    print()

    top = sorted(predicted_traffic, key=predicted_traffic.get, reverse=True)[:8]
    rows = [
        {
            "node": str(node),
            "degree": graph.degree(node),
            "analytic_Erev": FEE * predicted_traffic[node],
            "simulated_rate": metrics.revenue_rate(node),
        }
        for node in top
    ]
    print(format_table(rows, title="Eq. 3 prediction vs simulated revenue"))

    # --- capacity effects: larger payments fail more --------------------------
    print()
    rows = []
    for size in (0.5, 2.0, 8.0, 32.0):
        sized = PoissonWorkload(
            distribution, per_sender, sizes=FixedSize(size), seed=13
        )
        engine = SimulationEngine(graph.copy(), fee=ConstantFee(FEE))
        engine.schedule_workload(sized, 50.0)
        m = engine.run(until=50.0)
        rows.append(
            {
                "payment_size": size,
                "success_rate": m.success_rate,
                "failures": m.failed,
            }
        )
    print(
        format_table(
            rows,
            title="payment size vs success (the reduced subgraph G' shrinks)",
        )
    )


if __name__ == "__main__":
    main()
