#!/usr/bin/env python
"""Star emergence under churn: the creation game as a dynamic process.

The paper proves the star is a Nash equilibrium (Thm 8/9) — this example
shows it is also an *attractor*. Part 1 evolves one star under uniform
churn: leaves (and sometimes the hub) keep departing, closure costs are
realised through the Section II-C lifecycle model, and the survivors'
best responses re-grow a star every time. Part 2 runs the emergence
table over all three Section IV equilibrium topologies — serially and on
a process pool, verifying both executors produce identical rows — and
shows the path and the circle rewiring into a ``check_nash``-stable
star under the same parameters.

Run:
    python examples/evolve_network.py
"""

from repro import (
    ChurnSpec,
    EvolutionSpec,
    FeeSpec,
    Scenario,
    ScenarioRunner,
    TopologySpec,
    WorkloadSpec,
)
from repro.analysis import format_table
from repro.analysis.emergence import EMERGENCE_COLUMNS, emergence_table

# -- part 1: one star under churn, epoch by epoch ---------------------------

scenario = Scenario(
    # The Thm 9 stability region: a = b = 0.1, s = 2, l = 1 — statically,
    # no node wants to deviate from the star.
    topology=TopologySpec("star", {"leaves": 5, "balance": 10.0}),
    workload=WorkloadSpec("poisson", {"zipf_s": 2.0}),
    fee=FeeSpec("linear", {"base": 0.01, "rate": 0.001}),
    evolution=EvolutionSpec(
        epochs=8,
        churn=ChurnSpec("uniform", {"rate": 0.08}),
        utility="analytic",
        traffic_horizon=6.0,
        a=0.1,
        b=0.1,
        edge_cost=1.0,
        zipf_s=2.0,
    ),
    name="star-under-churn",
    seed=7,
)

result = ScenarioRunner().run(scenario)
trajectory = result.evolution
print(result.summary())
print(format_table(
    [
        {
            "epoch": r.epoch,
            "nodes": r.nodes,
            "channels": r.channels,
            "departures": r.departures,
            "closure_costs": r.closure_costs,
            "moves": r.moves,
            "topology": r.topology,
            "success_rate": r.success_rate,
            "welfare": r.welfare,
        }
        for r in trajectory.records
    ],
    title="star under uniform churn (rate 0.08)",
))
print(
    f"final topology: {trajectory.final_topology}, "
    f"nash_stable={trajectory.nash_stable} "
    f"(churned {trajectory.totals['total_departures']} nodes, "
    f"burned {trajectory.totals['total_closure_costs']:.2f} in closures)"
)

# -- part 2: emergence table, serial vs process -----------------------------

kwargs = dict(epochs=8, size=6, seed=7, churn_rate=0.05, traffic_horizon=4.0)
serial = emergence_table(executor="serial", **kwargs)
process = emergence_table(executor="process", max_workers=3, **kwargs)
assert serial == process, "process executor must reproduce serial rows"

print()
print(format_table(
    serial,
    columns=list(EMERGENCE_COLUMNS),
    title="emergence from the Section IV equilibria (serial == process)",
))
star_like = [row for row in serial if row["final_topology"] == "star"]
print(
    f"{len(star_like)}/3 starting topologies ended as a star — "
    "the equilibrium the dynamics select"
)
