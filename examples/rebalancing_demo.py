#!/usr/bin/env python
"""Rebalancing depleted channels with circular self-payments.

Section IV motivates stability analysis partly through "finding off-chain
rebalancing cycles for existing users to replenish depleted channels"
(Hide & Seek [30]). This example:

1. runs a one-sided payment flow that fully drains Alice's side of the
   Alice-Bob channel (later payments detour through Carol);
2. rebalances Alice with one atomic HTLC cycle, restoring her outbound
   liquidity toward Bob without any on-chain transaction;
3. re-runs payments and shows they take the direct channel again.

Run:
    python examples/rebalancing_demo.py
"""

from repro.analysis import format_table
from repro.network import ChannelGraph, auto_rebalance, channel_imbalances
from repro.simulation import SimulationEngine
from repro.simulation.events import PaymentEvent


def build_triangle() -> ChannelGraph:
    graph = ChannelGraph()
    graph.add_channel("alice", "bob", 10.0, 10.0)
    graph.add_channel("alice", "carol", 10.0, 10.0)
    graph.add_channel("carol", "bob", 10.0, 10.0)
    return graph


def pay_bob(graph: ChannelGraph, payments: int):
    """Alice pays Bob ``payments`` times; returns the run's metrics."""
    engine = SimulationEngine(graph, path_selection="first")
    for i in range(payments):
        engine.schedule(
            PaymentEvent(time=float(i + 1), sender="alice", receiver="bob",
                         amount=2.0)
        )
    return engine.run()


def imbalance_rows(graph: ChannelGraph) -> list:
    return [
        {
            "channel": f"alice-{i.counterparty}",
            "alice_side": i.local_balance,
            "capacity": i.capacity,
            "local_ratio": i.local_ratio,
        }
        for i in channel_imbalances(graph, "alice")
    ]


def main() -> None:
    graph = build_triangle()

    metrics = pay_bob(graph, payments=5)
    direct = metrics.edge_traffic.get(("alice", "bob"), 0)
    print(
        f"phase 1 — drain: {metrics.succeeded} payments ok "
        f"({direct} used the direct channel; the rest detoured via carol)"
    )
    print(format_table(imbalance_rows(graph), title="alice's channels after draining"))
    print()

    cycles = auto_rebalance(graph, "alice", target_ratio=0.2, max_cycles=5)
    print(f"phase 2 — rebalance: {cycles} circular payment(s), zero on-chain cost")
    print(format_table(imbalance_rows(graph), title="alice's channels after rebalancing"))
    print()

    metrics = pay_bob(graph, payments=2)
    direct = metrics.edge_traffic.get(("alice", "bob"), 0)
    print(
        f"phase 3 — resume: {metrics.succeeded}/2 payments ok, "
        f"{direct} took the direct alice-bob channel again"
    )
    print()
    print(
        "the rebalancing cycle itself moved no net worth — it only shifted "
        "alice's own liquidity between her channels "
        f"(alice now holds {graph.balance_of('alice'):g} coins after paying "
        "bob 4 more in phase 3)"
    )


if __name__ == "__main__":
    main()
