#!/usr/bin/env python
"""Price a jamming attack under success-only vs upfront fee policies.

Slow jamming is nearly free under Lightning's success-only fees: jams
never settle, so the attacker occupies the hub's HTLC slots and
liquidity for the whole horizon while paying (almost) nothing. The
proposed countermeasure — *upfront fees* — charges every attempt for
each hop it actually places, settle or not. This example sweeps that
policy over the paper's three Nash-equilibrium topologies (star, path,
circle) with :func:`repro.analysis.countermeasure_table`:

* the **damage** an attack does (victim revenue destroyed, honest
  success-rate degradation) is identical under every policy — the
  upfront charge is ledger-only, so liquidity and slot dynamics never
  change;
* the attack's **cost** grows linearly with the upfront rate, so the
  attacker's return on investment falls strictly — the table's last
  rows are the countermeasure's dose-response curve.

The sweep is cache-aware: pass ``--cache PATH`` and re-runs only
execute grid points whose resolved scenarios changed.

Run:
    python examples/upfront_fees.py
    python examples/upfront_fees.py --smoke          # CI-sized
    python examples/upfront_fees.py --cache .repro-cache
"""

import argparse

from repro.analysis import format_table
from repro.analysis.countermeasures import TABLE_COLUMNS, countermeasure_table


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="tiny sweep (5 nodes, 10 time units) for CI",
    )
    parser.add_argument(
        "--cache", default=None, metavar="PATH",
        help="content-addressed result store for the sweep",
    )
    parser.add_argument(
        "--backend", choices=["event", "batched"], default="batched",
        help="simulation engine (reports are bit-identical either way)",
    )
    args = parser.parse_args()

    size, horizon, budget = (5, 10.0, 200.0) if args.smoke else (9, 40.0, 1000.0)
    rates = [0.01, 0.02, 0.05, 0.1]

    rows = countermeasure_table(
        rates,
        budget=budget,
        strategy="slow-jamming",
        size=size,
        horizon=horizon,
        seed=7,
        backend=args.backend,
        cache=args.cache,
    )
    print(format_table(
        rows,
        columns=list(TABLE_COLUMNS),
        title="slow jamming vs upfront fees (NE topologies)",
    ))
    print()

    # Sanity-check the claims the table makes, per topology.
    for topology in ("star", "path", "circle"):
        policy_rows = [r for r in rows if r["topology"] == topology]
        rois = [r["attacker_roi"] for r in policy_rows]
        deltas = {round(r["victim_revenue_delta"], 12) for r in policy_rows}
        assert len(deltas) == 1, "upfront fees must not change attack damage"
        assert all(a > b for a, b in zip(rois, rois[1:])), (
            "attacker ROI must fall strictly with the upfront rate"
        )
        drop = 1.0 - rois[-1] / rois[0] if rois[0] else 0.0
        print(
            f"{topology:>6}: damage constant at "
            f"{policy_rows[0]['victim_revenue_delta']:.4f}, attacker ROI "
            f"down {drop:.0%} at upfront rate {rates[-1]}"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
