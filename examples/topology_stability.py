#!/usr/bin/env python
"""Map the Nash-equilibrium regions of the simple topologies (Section IV).

Sweeps the Zipf parameter s and the edge cost l, and prints, for the star,
path, and circle graphs, whether best-response search finds an improving
deviation — plus the Thm 8 closed-form verdict for the star. Reproduces
the paper's qualitative conclusion: "the star graph is the predominant
topology".

Run:
    python examples/topology_stability.py
"""

from repro.analysis import format_table, run_sweep
from repro.equilibrium import (
    NetworkGameModel,
    check_nash,
    circle,
    path,
    star,
    star_ne_closed_form,
)

N = 5  # leaves for the star; nodes for path/circle
A = B = 0.6


def evaluate(s: float, l: float) -> dict:
    model = NetworkGameModel(a=A, b=B, edge_cost=l, zipf_s=s)
    return {
        "star_ne": check_nash(star(N), model, seed=0).is_nash,
        "star_thm8": star_ne_closed_form(N, s, A, B, l),
        "path_ne": check_nash(path(N), model, seed=0).is_nash,
        "circle_ne": check_nash(circle(N + 1), model, seed=0).is_nash,
    }


def main() -> None:
    grid = {"s": [0.0, 1.0, 2.0, 3.0], "l": [0.05, 0.2, 0.5, 1.0]}
    rows = run_sweep(grid, evaluate)
    print(
        format_table(
            rows,
            title=(
                f"NE regions (a=b={A}): star({N}), path({N}), "
                f"circle({N + 1})"
            ),
        )
    )
    star_wins = sum(r["star_ne"] for r in rows)
    path_wins = sum(r["path_ne"] for r in rows)
    circle_wins = sum(r["circle_ne"] for r in rows)
    print()
    print(
        f"stable cells — star: {star_wins}/{len(rows)}, "
        f"path: {path_wins}/{len(rows)}, circle: {circle_wins}/{len(rows)}"
    )
    print("(the star dominates, matching the paper's conclusion)")


if __name__ == "__main__":
    main()
