from setuptools import find_packages, setup

setup(
    name="lightning-creation-games",
    version="1.4.0",
    description=(
        "Reproduction of 'Lightning Creation Games' (ICDCS 2023): "
        "payment-channel-network creation games, joining-strategy "
        "optimisation, and a discrete-event payment simulator"
    ),
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.9",
    install_requires=[
        "numpy",
        "networkx",
    ],
    entry_points={
        "console_scripts": [
            "lightning-creation-games = repro.cli:main",
        ],
    },
)
